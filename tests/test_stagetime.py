"""Units for stage-time accounting and the bench JSON recorder.

The stage accumulator (`repro.util.stagetime`) feeds the ``--verbose``
per-backend stage report; the bench recorder (`repro.util.benchjson`)
feeds the CI ``bench-results`` artifact. Both are observability-only,
which is exactly why they get direct units: nothing downstream would
fail if they silently reported nonsense.
"""

import json

import pytest

from repro.cpu.simulator import Simulator
from repro.cpu.workloads import get_benchmark
from repro.exec.engine import (
    BatchReport,
    reset_telemetry,
    run_jobs,
    telemetry,
    telemetry_lines,
)
from repro.exec.jobs import SimulationJob
from repro.util import stagetime
from repro.util.benchjson import ENV_BENCH_JSON, record_benchmark


@pytest.fixture(autouse=True)
def _clean_stagetime():
    stagetime.reset()
    yield
    stagetime.reset()


class TestAccumulator:
    def test_add_and_totals(self):
        stagetime.add("kernel", 1.5)
        stagetime.add("kernel", 0.5)
        stagetime.add("generate", 0.25)
        assert stagetime.totals() == {"kernel": 2.0, "generate": 0.25}

    def test_totals_returns_a_copy(self):
        stagetime.add("kernel", 1.0)
        snap = stagetime.totals()
        snap["kernel"] = 99.0
        assert stagetime.totals()["kernel"] == 1.0

    def test_delta_since(self):
        stagetime.add("generate", 1.0)
        before = stagetime.snapshot()
        stagetime.add("generate", 0.5)
        stagetime.add("pricing", 0.25)
        delta = stagetime.delta_since(before)
        assert delta == {"generate": 0.5, "pricing": 0.25}

    def test_delta_omits_unchanged_stages(self):
        stagetime.add("kernel", 1.0)
        assert stagetime.delta_since(stagetime.snapshot()) == {}

    def test_absorb(self):
        stagetime.add("kernel", 1.0)
        stagetime.absorb({"kernel": 0.5, "decode": 0.1})
        assert stagetime.totals() == {"kernel": 1.5, "decode": 0.1}

    def test_absorb_into_external_map(self):
        tally = {"kernel": 1.0}
        stagetime.absorb_into(tally, {"kernel": 2.0, "generate": 3.0})
        assert tally == {"kernel": 3.0, "generate": 3.0}

    def test_timed_context(self):
        with stagetime.timed("pricing"):
            pass
        totals = stagetime.totals()
        assert totals["pricing"] >= 0.0

    def test_timed_charges_on_exception(self):
        with pytest.raises(RuntimeError):
            with stagetime.timed("kernel"):
                raise RuntimeError("boom")
        assert "kernel" in stagetime.totals()

    def test_timed_iterator_preserves_items_and_charges(self):
        items = list(stagetime.timed_iterator("generate", iter([1, 2, 3])))
        assert items == [1, 2, 3]
        assert stagetime.totals()["generate"] >= 0.0

    def test_format_stages_canonical_order_first(self):
        text = stagetime.format_stages(
            {"pricing": 0.25, "generate": 1.0, "custom": 2.0, "kernel": 0.5}
        )
        assert text == "generate=1.000s kernel=0.500s pricing=0.250s custom=2.000s"


class TestSimulationStageCapture:
    def test_walk_run_accrues_generate_and_kernel(self):
        Simulator(get_benchmark("gzip"), seed=3).run(2_000)
        totals = stagetime.totals()
        assert totals.get("generate", 0.0) > 0.0
        assert "kernel" in totals

    def test_streaming_walk_attributes_generation(self):
        Simulator(get_benchmark("gzip"), seed=3, streaming=True).run(2_000)
        totals = stagetime.totals()
        assert totals.get("generate", 0.0) > 0.0
        assert "kernel" in totals

    def test_run_jobs_attributes_stages_to_the_batch(self):
        reset_telemetry()
        job = SimulationJob(
            profile=get_benchmark("mcf"), num_instructions=2_000, seed=5
        )
        report = BatchReport()
        run_jobs([job], backend="serial", use_cache=False, report=report)
        assert report.stage_seconds.get("generate", 0.0) > 0.0
        tallies = telemetry()
        assert tallies["serial"].stage_seconds
        lines = telemetry_lines()
        assert any(line.startswith("[repro] stages serial:") for line in lines)
        assert any("generate=" in line for line in lines)
        reset_telemetry()

    def test_telemetry_copies_stage_maps(self):
        reset_telemetry()
        job = SimulationJob(
            profile=get_benchmark("mcf"), num_instructions=2_000, seed=5
        )
        run_jobs([job], backend="serial", use_cache=False)
        first = telemetry()["serial"].stage_seconds
        first["kernel"] = 1e9
        assert telemetry()["serial"].stage_seconds.get("kernel", 0.0) < 1e9
        reset_telemetry()


class TestBenchJson:
    def test_noop_without_env(self, monkeypatch):
        monkeypatch.delenv(ENV_BENCH_JSON, raising=False)
        assert record_benchmark("x", ops_per_sec=1.0) is None

    @staticmethod
    def _explicit(entry):
        """The caller-provided fields of a bench entry (the auto-stamped
        peak_rss_bytes/stage_seconds observability fields removed)."""
        return {
            k: v
            for k, v in entry.items()
            if k not in ("peak_rss_bytes", "stage_seconds")
        }

    def test_records_and_merges(self, tmp_path, monkeypatch):
        target = tmp_path / "bench.json"
        monkeypatch.setenv(ENV_BENCH_JSON, str(target))
        record_benchmark("alpha", ops_per_sec=100.0, speedup=3.5, floor=3.0)
        record_benchmark("beta", speedup=10.0)
        record_benchmark("alpha", ops_per_sec=200.0)  # overwrite one entry
        data = json.loads(target.read_text())
        assert self._explicit(data["alpha"]) == {"ops_per_sec": 200.0}
        assert self._explicit(data["beta"]) == {"speedup": 10.0}

    def test_stamps_peak_rss(self, tmp_path, monkeypatch):
        target = tmp_path / "bench.json"
        monkeypatch.setenv(ENV_BENCH_JSON, str(target))
        record_benchmark("alpha", ops_per_sec=100.0)
        entry = json.loads(target.read_text())["alpha"]
        # A Python process is at least a few MiB resident on any
        # platform where resource.getrusage works.
        assert entry["peak_rss_bytes"] > 1024 * 1024

    def test_stamps_stage_seconds_when_accrued(self, tmp_path, monkeypatch):
        from repro.util import stagetime

        target = tmp_path / "bench.json"
        monkeypatch.setenv(ENV_BENCH_JSON, str(target))
        stagetime.reset()
        try:
            record_benchmark("cold", ops_per_sec=1.0)
            stagetime.add("kernel", 1.25)
            record_benchmark("warm", ops_per_sec=1.0)
        finally:
            stagetime.reset()
        data = json.loads(target.read_text())
        assert "stage_seconds" not in data["cold"]
        assert data["warm"]["stage_seconds"] == {"kernel": 1.25}

    def test_tolerates_corrupt_existing_file(self, tmp_path, monkeypatch):
        target = tmp_path / "bench.json"
        target.write_text("not json{")
        monkeypatch.setenv(ENV_BENCH_JSON, str(target))
        path = record_benchmark("gamma", ops_per_sec=1.0)
        assert path == target
        data = json.loads(target.read_text())
        assert self._explicit(data["gamma"]) == {"ops_per_sec": 1.0}

    def test_creates_parent_directories(self, tmp_path, monkeypatch):
        target = tmp_path / "deep" / "nested" / "bench.json"
        monkeypatch.setenv(ENV_BENCH_JSON, str(target))
        record_benchmark("delta", speedup=2.0, note="extra fields kept")
        data = json.loads(target.read_text())
        assert self._explicit(data["delta"]) == {
            "speedup": 2.0,
            "note": "extra fields kept",
        }
