"""WorkloadProfile validation rejection paths and lookup ergonomics."""

import dataclasses

import pytest

from repro.cpu.isa import FP_FU_OPS
from repro.cpu.workloads import (
    BENCHMARKS,
    benchmark_names,
    generate_trace,
    get_benchmark,
)


def _variant(**overrides):
    """A gzip variant with selected fields replaced (triggers validation)."""
    return dataclasses.replace(get_benchmark("gzip"), name="variant", **overrides)


class TestFractionValidation:
    @pytest.mark.parametrize("field", [
        "frac_int_mult", "frac_load", "frac_store", "frac_fp",
        "call_fraction", "loop_branch_fraction", "fixed_trip_fraction",
        "indirect_branch_fraction", "stack_prob", "stream_prob",
        "first_source_prob", "second_source_prob", "load_chain_prob",
        "random_branch_fraction", "heap_hot_prob", "biased_taken_prob",
    ])
    def test_each_fraction_field_rejects_out_of_range(self, field):
        with pytest.raises(ValueError, match=f"{field} must be a fraction"):
            _variant(**{field: 1.2})
        with pytest.raises(ValueError, match=f"{field} must be a fraction"):
            _variant(**{field: -0.1})

    def test_error_message_names_the_profile_and_value(self):
        with pytest.raises(ValueError, match=r"variant: frac_load .* got 2\.0"):
            _variant(frac_load=2.0)

    def test_body_fractions_must_leave_room_for_int_alu(self):
        with pytest.raises(ValueError, match="body op fractions"):
            _variant(
                frac_int_mult=0.3, frac_load=0.3, frac_store=0.3, frac_fp=0.3
            )

    def test_exact_sum_of_one_rejected(self):
        """A body sum of exactly 1.0 must be rejected: per-class deck
        rounding could overflow the deck and silently skew the mix."""
        with pytest.raises(ValueError, match="INT_ALU"):
            _variant(
                frac_int_mult=63.5 / 512, frac_load=129.5 / 512,
                frac_store=129.5 / 512, frac_fp=189.5 / 512,
            )

    def test_locality_probabilities_must_not_exceed_one(self):
        with pytest.raises(ValueError, match="locality probabilities"):
            _variant(stack_prob=0.6, stream_prob=0.6)

    def test_structure_bounds_still_enforced(self):
        with pytest.raises(ValueError, match="blocks must average"):
            _variant(mean_block_size=1.0)
        with pytest.raises(ValueError, match="dependency distance"):
            _variant(mean_dep_distance=0.5)
        with pytest.raises(ValueError, match="degenerate code structure"):
            _variant(num_blocks=2)
        with pytest.raises(ValueError, match="FU count"):
            _variant(reference_fus=5)

    def test_boundary_values_accepted(self):
        profile = _variant(frac_fp=0.0, random_branch_fraction=1.0)
        assert profile.frac_fp == 0.0


class TestBenchmarkLookup:
    def test_typo_gets_close_match_suggestions(self):
        with pytest.raises(KeyError, match="did you mean gzip"):
            get_benchmark("gzp")

    def test_suggestions_do_not_dump_full_list(self):
        with pytest.raises(KeyError) as info:
            get_benchmark("parser2k")
        message = str(info.value)
        assert "did you mean" in message
        # A suggestion message, not the whole registry.
        listed = [name for name in benchmark_names() if name in message]
        assert len(listed) < len(benchmark_names())

    def test_hopeless_name_lists_known_benchmarks(self):
        with pytest.raises(KeyError, match="known:"):
            get_benchmark("qqqqqq")


class TestFpFraction:
    def test_seed_benchmarks_have_no_fp_ops(self):
        """The nine integer benchmarks stay fp-free (frac_fp defaults 0),
        so their traces — and cached results — are what they always were."""
        for name in BENCHMARKS:
            profile = get_benchmark(name)
            assert profile.frac_fp == 0.0
            trace = generate_trace(profile, 1_500, seed=1)
            assert not any(instr.op in FP_FU_OPS for instr in trace)

    def test_fp_fraction_materializes_in_the_trace(self):
        profile = _variant(frac_fp=0.3)
        trace = generate_trace(profile, 2_000, seed=1)
        fp_ops = sum(1 for instr in trace if instr.op in FP_FU_OPS)
        assert 0.15 * len(trace) < fp_ops < 0.45 * len(trace)

    def test_frac_int_alu_accounts_for_fp(self):
        profile = _variant(frac_fp=0.2)
        expected = 1.0 - (
            profile.frac_int_mult + profile.frac_load
            + profile.frac_store + 0.2
        )
        assert abs(profile.frac_int_alu - expected) < 1e-12
