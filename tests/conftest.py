"""Shared fixtures.

Pipeline simulations are the expensive part of the suite, so the small
reference runs used by many tests are session-scoped and cached.
"""

from __future__ import annotations

import pytest

from repro.circuits.library import calibrated_device_parameters
from repro.core.parameters import TechnologyParameters
from repro.cpu.config import MachineConfig
from repro.cpu.simulator import simulate_workload
from repro.cpu.workloads import get_benchmark


@pytest.fixture(scope="session")
def device_params():
    """The Table 1-calibrated device parameters."""
    return calibrated_device_parameters()


@pytest.fixture(scope="session")
def tech_low():
    """The near-term technology point (p = 0.05)."""
    return TechnologyParameters(leakage_factor_p=0.05)


@pytest.fixture(scope="session")
def tech_high():
    """The projected high-leakage point (p = 0.50)."""
    return TechnologyParameters(leakage_factor_p=0.50)


@pytest.fixture(scope="session")
def small_gzip_run():
    """A small gzip simulation shared by pipeline/stats/energy tests."""
    return simulate_workload(
        get_benchmark("gzip"), 6_000, warmup_instructions=2_000
    )


@pytest.fixture(scope="session")
def small_mcf_run():
    """A small memory-bound run (long idle intervals)."""
    return simulate_workload(
        get_benchmark("mcf"),
        5_000,
        config=MachineConfig().with_int_fus(2),
        warmup_instructions=2_000,
    )
