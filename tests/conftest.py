"""Shared fixtures.

Pipeline simulations are the expensive part of the suite, so the small
reference runs used by many tests are session-scoped and cached.
"""

from __future__ import annotations

import pytest

from repro.circuits.library import calibrated_device_parameters
from repro.core.parameters import TechnologyParameters
from repro.cpu.config import MachineConfig
from repro.cpu.simulator import simulate_workload
from repro.cpu.workloads import get_benchmark
from repro.exec import cache as result_cache


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="regenerate the committed golden files in tests/goldens/ "
        "from the current model instead of comparing against them",
    )


@pytest.fixture
def update_goldens(request) -> bool:
    """Whether this run should rewrite goldens rather than assert them."""
    return request.config.getoption("--update-goldens")


@pytest.fixture(scope="session", autouse=True)
def _isolated_result_cache(tmp_path_factory):
    """Point the persistent result cache at a throwaway directory.

    Keeps the unit-test suite hermetic: no reads from (or writes to) the
    user's ``~/.cache/repro``, and no cross-run coupling between test
    sessions. The redirect is applied at the environment level so even
    code that calls ``configure(cache_dir=None)`` mid-session (the CLI's
    default path) stays inside the throwaway directory.
    """
    directory = tmp_path_factory.mktemp("result-cache")
    patcher = pytest.MonkeyPatch()
    patcher.setenv(result_cache.ENV_CACHE_DIR, str(directory))
    result_cache.configure(cache_dir=directory)
    yield
    patcher.undo()


@pytest.fixture
def preserve_cache_config():
    """Snapshot/restore the process-wide persistent-cache configuration.

    For tests that call ``repro.exec.cache.configure`` (directly or via
    CLI flags) so they cannot leak cache state into later tests.
    """
    previous = result_cache.snapshot()
    yield
    result_cache.restore(previous)


@pytest.fixture(scope="session")
def device_params():
    """The Table 1-calibrated device parameters."""
    return calibrated_device_parameters()


@pytest.fixture(scope="session")
def tech_low():
    """The near-term technology point (p = 0.05)."""
    return TechnologyParameters(leakage_factor_p=0.05)


@pytest.fixture(scope="session")
def tech_high():
    """The projected high-leakage point (p = 0.50)."""
    return TechnologyParameters(leakage_factor_p=0.50)


@pytest.fixture(scope="session")
def small_gzip_run():
    """A small gzip simulation shared by pipeline/stats/energy tests."""
    return simulate_workload(
        get_benchmark("gzip"), 6_000, warmup_instructions=2_000
    )


@pytest.fixture(scope="session")
def small_mcf_run():
    """A small memory-bound run (long idle intervals)."""
    return simulate_workload(
        get_benchmark("mcf"),
        5_000,
        config=MachineConfig().with_int_fus(2),
        warmup_instructions=2_000,
    )
