"""Unit tests for the 500-gate generic FU circuit (Figure 3)."""

import pytest

from repro.circuits.functional_unit import (
    FunctionalUnitCircuit,
    SleepDistributionNetwork,
    compute_idle_energy_curves,
)
from repro.circuits.gates import DominoStyle, build_or8
from repro.circuits.library import calibrated_device_parameters


@pytest.fixture(scope="module")
def params():
    return calibrated_device_parameters()


@pytest.fixture(scope="module")
def circuit():
    return FunctionalUnitCircuit()


class TestStructure:
    def test_paper_configuration(self, circuit):
        assert circuit.num_gates == 500
        assert circuit.rows == 100
        assert circuit.stages == 5
        assert circuit.num_sleep_transistors == 100

    def test_requires_sleep_capable_gate(self):
        with pytest.raises(ValueError):
            FunctionalUnitCircuit(gate=build_or8(DominoStyle.DUAL_VT))

    def test_sleep_network_must_span_rows(self):
        with pytest.raises(ValueError):
            FunctionalUnitCircuit(
                rows=50, sleep_network=SleepDistributionNetwork(rows=100)
            )


class TestEnergies:
    def test_max_dynamic_energy(self, circuit, params):
        assert circuit.max_dynamic_energy_fj(params) == pytest.approx(
            500 * 22.2, rel=0.01
        )

    def test_evaluation_energy_scales_with_alpha(self, circuit, params):
        full = circuit.evaluation_energy_fj(params, 1.0)
        half = circuit.evaluation_energy_fj(params, 0.5)
        assert half == pytest.approx(full / 2)

    def test_idle_leakage_interpolates_between_states(self, circuit, params):
        all_hi = circuit.idle_leakage_per_cycle_fj(params, 0.0)
        all_lo = circuit.idle_leakage_per_cycle_fj(params, 1.0)
        mid = circuit.idle_leakage_per_cycle_fj(params, 0.5)
        assert all_lo < mid < all_hi
        assert mid == pytest.approx((all_hi + all_lo) / 2)

    def test_sleep_leakage_below_any_idle_leakage(self, circuit, params):
        assert circuit.sleep_leakage_per_cycle_fj(
            params
        ) < circuit.idle_leakage_per_cycle_fj(params, 0.99)

    def test_transition_cost_decreases_with_alpha(self, circuit, params):
        low = circuit.sleep_transition_energy_fj(params, 0.1)
        high = circuit.sleep_transition_energy_fj(params, 0.9)
        assert high < low

    def test_alpha_validation(self, circuit, params):
        with pytest.raises(ValueError):
            circuit.evaluation_energy_fj(params, 1.5)


class TestFigure3Claims:
    """The paper's quantitative claims about the FU circuit."""

    def test_breakeven_is_17_cycles_at_alpha_01(self, circuit, params):
        breakeven = circuit.breakeven_interval_cycles(params, 0.1)
        assert breakeven == pytest.approx(17.0, abs=0.5)

    def test_breakeven_relatively_insensitive_to_alpha(self, circuit, params):
        b01 = circuit.breakeven_interval_cycles(params, 0.1)
        b05 = circuit.breakeven_interval_cycles(params, 0.5)
        assert abs(b05 - b01) < 2.0

    def test_sleep_curve_plateaus_and_idle_curve_is_linear(self, params):
        curves = compute_idle_energy_curves(0.5, max_idle_cycles=20)
        unc = curves.uncontrolled_pj
        slept = curves.sleep_pj
        # Uncontrolled idle grows linearly from the origin.
        assert unc[0] == 0.0
        slope1 = unc[1] - unc[0]
        slope2 = unc[20] - unc[19]
        assert slope1 == pytest.approx(slope2)
        # Sleep jumps then plateaus (per-cycle increment tiny).
        assert slept[1] > 100 * (slept[20] - slept[19])

    def test_crossover_matches_breakeven(self, circuit, params):
        curves = compute_idle_energy_curves(0.1, max_idle_cycles=25)
        breakeven = circuit.breakeven_interval_cycles(params, 0.1)
        crossover = curves.crossover_cycle()
        assert crossover is not None
        assert crossover == pytest.approx(breakeven, abs=1.0)

    def test_zero_interval_energies_are_zero(self, circuit, params):
        assert circuit.idle_energy_uncontrolled_fj(params, 0.5, 0) == 0.0
        assert circuit.idle_energy_sleep_fj(params, 0.5, 0) == 0.0
