"""Tests for the persistent result cache and its canonical keys."""

import pickle

import pytest

from repro.cpu.config import MachineConfig
from repro.cpu.workloads import get_benchmark
from repro.exec import cache, hashing
from repro.exec.cache import ResultCache
from repro.exec.hashing import canonical_form, canonical_key, simulation_key


class TestCanonicalHashing:
    def test_same_inputs_same_key(self):
        profile = get_benchmark("gzip")
        config = MachineConfig()
        a = simulation_key(profile, 2000, 500, 1, config)
        b = simulation_key(profile, 2000, 500, 1, MachineConfig())
        assert a == b
        assert len(a) == 64

    def test_every_parameter_is_significant(self):
        profile = get_benchmark("gzip")
        config = MachineConfig()
        base = simulation_key(profile, 2000, 500, 1, config)
        assert simulation_key(profile, 2001, 500, 1, config) != base
        assert simulation_key(profile, 2000, 501, 1, config) != base
        assert simulation_key(profile, 2000, 500, 2, config) != base
        assert (
            simulation_key(profile, 2000, 500, 1, config.with_int_fus(2)) != base
        )
        assert (
            simulation_key(
                get_benchmark("mcf"), 2000, 500, 1, config
            )
            != base
        )

    def test_nested_config_fields_reach_the_key(self):
        profile = get_benchmark("gzip")
        config = MachineConfig()
        assert simulation_key(
            profile, 2000, 500, 1, config.with_l2_latency(32)
        ) != simulation_key(profile, 2000, 500, 1, config)

    def test_canonical_form_tags_dataclass_types(self):
        form = canonical_form(MachineConfig())
        assert form["__class__"] == "MachineConfig"
        assert form["l2_cache"]["__class__"] == "CacheConfig"

    def test_canonical_form_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            canonical_form(object())

    def test_model_version_invalidates_keys(self, monkeypatch):
        """Changing the model fingerprint must change every key, so stale
        persistent entries are never looked up after a model edit."""
        profile = get_benchmark("gzip")
        config = MachineConfig()
        before = simulation_key(profile, 2000, 500, 1, config)
        monkeypatch.setattr(
            hashing, "model_fingerprint", lambda: "different-model-version"
        )
        after = simulation_key(profile, 2000, 500, 1, config)
        assert before != after

    def test_unversioned_keys_ignore_the_model(self, monkeypatch):
        before = canonical_key({"x": 1}, versioned=False)
        monkeypatch.setattr(hashing, "model_fingerprint", lambda: "changed")
        assert canonical_key({"x": 1}, versioned=False) == before


class TestResultCache:
    KEY = "ab" + "0" * 62

    def test_miss_then_hit(self, tmp_path):
        store = ResultCache(tmp_path)
        assert store.get(self.KEY) is None
        store.put(self.KEY, {"value": 42})
        assert store.get(self.KEY) == {"value": 42}
        assert (store.hits, store.misses, store.writes) == (1, 1, 1)

    def test_entries_survive_reopening(self, tmp_path):
        ResultCache(tmp_path).put(self.KEY, [1, 2, 3])
        assert ResultCache(tmp_path).get(self.KEY) == [1, 2, 3]

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        store = ResultCache(tmp_path)
        store.put(self.KEY, "good")
        path = store._path(self.KEY)
        path.write_bytes(b"\x80not a pickle")
        assert store.get(self.KEY) is None
        assert not path.exists()

    def test_len_and_clear(self, tmp_path):
        store = ResultCache(tmp_path)
        store.put("aa" + "0" * 62, 1)
        store.put("bb" + "0" * 62, 2)
        assert len(store) == 2
        assert store.clear() == 2
        assert len(store) == 0

    def test_rejects_non_hex_keys(self, tmp_path):
        store = ResultCache(tmp_path)
        with pytest.raises(ValueError):
            store.get("../../escape")

    def test_values_roundtrip_pickle_exactly(self, tmp_path, small_gzip_run):
        store = ResultCache(tmp_path)
        store.put(self.KEY, small_gzip_run)
        loaded = store.get(self.KEY)
        assert loaded is not small_gzip_run
        assert pickle.dumps(loaded) == pickle.dumps(small_gzip_run)


class TestActiveCacheConfiguration:
    def test_configure_directory(self, tmp_path, preserve_cache_config):
        store = cache.configure(cache_dir=tmp_path / "store")
        assert store is cache.active()
        assert store.directory == tmp_path / "store"

    def test_disable(self, preserve_cache_config):
        assert cache.configure(enabled=False) is None
        assert cache.active() is None

    def test_env_kill_switch(self, tmp_path, preserve_cache_config, monkeypatch):
        monkeypatch.setenv(cache.ENV_NO_CACHE, "1")
        assert cache.configure(cache_dir=tmp_path) is None

    def test_env_cache_dir(self, tmp_path, preserve_cache_config, monkeypatch):
        monkeypatch.setenv(cache.ENV_CACHE_DIR, str(tmp_path / "env-cache"))
        assert cache.default_cache_dir() == tmp_path / "env-cache"
        store = cache.configure()
        assert store.directory == tmp_path / "env-cache"
