"""Unit tests for the total-energy model (equations 1-3)."""

import pytest

from repro.core.energy_model import (
    CycleCounts,
    EnergyBreakdown,
    absolute_energy_fj,
    relative_energy,
)
from repro.core.parameters import TechnologyParameters


@pytest.fixture
def params():
    return TechnologyParameters(leakage_factor_p=0.5)


class TestCycleCounts:
    def test_totals(self):
        counts = CycleCounts(active=10, uncontrolled_idle=5, sleep=3, transitions=1)
        assert counts.total_cycles == 18

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            CycleCounts(active=-1)

    def test_rejects_transitions_without_sleep(self):
        with pytest.raises(ValueError):
            CycleCounts(active=1, transitions=2)

    def test_rejects_fractional_transitions_without_sleep(self):
        """The guard is exact: any positive transition count needs some
        sleep residency, however small."""
        with pytest.raises(ValueError):
            CycleCounts(active=0, sleep=0.0, transitions=1e-9)

    def test_fractional_gradual_outcomes_pass(self):
        """Fractional GradualSleep expectations must be accepted: partial
        transitions with sub-cycle sleep residency, including
        transitions exceeding sleep."""
        counts = CycleCounts(active=0, sleep=0.125, transitions=0.125)
        assert counts.total_cycles == pytest.approx(0.125)
        exceeded = CycleCounts(active=0, sleep=0.25, transitions=0.5)
        assert exceeded.transitions > exceeded.sleep  # valid taxonomy

    def test_zero_transitions_zero_sleep_pass(self):
        counts = CycleCounts(active=5, uncontrolled_idle=3)
        assert counts.sleep == 0.0 and counts.transitions == 0.0

    def test_scaled(self):
        counts = CycleCounts(active=10, sleep=4, transitions=2)
        doubled = counts.scaled(2.0)
        assert doubled.active == 20
        assert doubled.sleep == 8
        assert doubled.transitions == 4
        with pytest.raises(ValueError):
            counts.scaled(-1.0)

    def test_plus_is_componentwise(self):
        a = CycleCounts(active=10, uncontrolled_idle=5, sleep=4, transitions=2)
        b = CycleCounts(active=1, uncontrolled_idle=2, sleep=3, transitions=1)
        total = a.plus(b)
        assert total.active == 11
        assert total.uncontrolled_idle == 7
        assert total.sleep == 7
        assert total.transitions == 3


class TestRelativeEnergy:
    def test_pure_active(self, params):
        counts = CycleCounts(active=100)
        breakdown = relative_energy(params, 0.5, counts)
        assert breakdown.total == pytest.approx(
            100 * params.active_cycle_energy(0.5)
        )
        assert breakdown.sleep_leakage == 0
        assert breakdown.transition_dynamic == 0

    def test_pure_uncontrolled_idle(self, params):
        counts = CycleCounts(active=0, uncontrolled_idle=50)
        breakdown = relative_energy(params, 0.5, counts)
        assert breakdown.total == pytest.approx(
            50 * params.uncontrolled_idle_energy(0.5)
        )
        assert breakdown.dynamic == 0

    def test_sleep_with_transitions(self, params):
        counts = CycleCounts(active=10, sleep=30, transitions=3)
        breakdown = relative_energy(params, 0.5, counts)
        assert breakdown.sleep_leakage == pytest.approx(
            30 * params.sleep_cycle_energy()
        )
        assert breakdown.transition_dynamic == pytest.approx(3 * 0.5)
        assert breakdown.transition_overhead == pytest.approx(3 * 0.01)

    def test_alpha_extremes(self, params):
        counts = CycleCounts(active=10, sleep=10, transitions=1)
        # alpha = 1: every node discharged by evaluation -> free transition
        # except the assert overhead.
        b = relative_energy(params, 1.0, counts)
        assert b.transition_dynamic == 0.0
        assert b.transition_overhead == pytest.approx(0.01)

    def test_linearity_in_counts(self, params):
        counts = CycleCounts(active=7, uncontrolled_idle=3, sleep=5, transitions=2)
        one = relative_energy(params, 0.3, counts)
        two = relative_energy(params, 0.3, counts.scaled(2))
        assert two.total == pytest.approx(2 * one.total)


class TestEnergyBreakdown:
    def test_leakage_fraction(self):
        breakdown = EnergyBreakdown(
            dynamic=6.0,
            active_leakage=1.0,
            uncontrolled_idle_leakage=2.0,
            sleep_leakage=1.0,
            transition_dynamic=0.0,
            transition_overhead=0.0,
        )
        assert breakdown.leakage == 4.0
        assert breakdown.leakage_fraction == pytest.approx(0.4)

    def test_zero_total_fraction(self):
        zero = EnergyBreakdown(0, 0, 0, 0, 0, 0)
        assert zero.leakage_fraction == 0.0

    def test_plus_is_componentwise(self):
        a = EnergyBreakdown(1, 2, 3, 4, 5, 6)
        b = EnergyBreakdown(10, 20, 30, 40, 50, 60)
        c = a.plus(b)
        assert c.dynamic == 11
        assert c.sleep_leakage == 44
        assert c.total == a.total + b.total


class TestAbsoluteEnergy:
    def test_matches_relative_scaled_by_ed(self, params):
        counts = CycleCounts(active=20, uncontrolled_idle=10, sleep=5, transitions=1)
        relative = relative_energy(params, 0.4, counts).total
        absolute = absolute_energy_fj(params, 0.4, counts, dynamic_energy_fj=22.2)
        assert absolute == pytest.approx(relative * 22.2)

    def test_rejects_nonpositive_ed(self, params):
        with pytest.raises(ValueError):
            absolute_energy_fj(params, 0.5, CycleCounts(active=1), 0.0)
