"""Unit tests for value-based activity-factor estimation."""

import pytest

from repro.core.activity import (
    MIXED_VALUES,
    ONE_DOMINATED,
    ZERO_DOMINATED,
    OperandValueModel,
    bit_density,
    estimate_alpha_from_values,
    or_gate_discharge_probability,
)


class TestBitDensity:
    def test_zero_values(self):
        assert bit_density([0, 0, 0], bits=8) == 0.0

    def test_all_ones(self):
        assert bit_density([0xFF], bits=8) == 1.0

    def test_negative_values_sign_extend_to_ones(self):
        # -1 in two's complement is all ones at any width.
        assert bit_density([-1], bits=16) == 1.0
        # A small negative number is ones-dominated.
        assert bit_density([-2], bits=16) == pytest.approx(15 / 16)

    def test_small_positive_values_are_zero_dominated(self):
        density = bit_density([3, 5, 7], bits=64)
        assert density < 0.05

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bit_density([], bits=8)


class TestOrGateDischarge:
    def test_endpoints(self):
        assert or_gate_discharge_probability(0.0, 8) == 0.0
        assert or_gate_discharge_probability(1.0, 8) == 1.0

    def test_fan_in_increases_discharge(self):
        low = or_gate_discharge_probability(0.1, 2)
        high = or_gate_discharge_probability(0.1, 8)
        assert high > low

    def test_uniform_bits_give_high_alpha_for_or8(self):
        # 1 - 0.5^8: an OR8 over random bits almost always discharges.
        assert or_gate_discharge_probability(0.5, 8) == pytest.approx(1 - 2**-8)

    def test_validation(self):
        with pytest.raises(ValueError):
            or_gate_discharge_probability(1.5, 8)
        with pytest.raises(ValueError):
            or_gate_discharge_probability(0.5, 0)


class TestEstimateFromValues:
    def test_zero_dominated_stream_gives_low_alpha(self):
        values = [i % 7 for i in range(100)]  # tiny positive integers
        alpha = estimate_alpha_from_values(values)
        assert alpha < 0.3

    def test_ones_dominated_stream_gives_high_alpha(self):
        values = [-(i % 7) - 1 for i in range(100)]  # small negatives
        alpha = estimate_alpha_from_values(values)
        assert alpha > 0.7


class TestOperandValueModel:
    def test_paper_alpha_regimes(self):
        """The three populations bracket the paper's empirical alphas
        (0.25 / 0.50 / 0.75)."""
        low = ZERO_DOMINATED.estimated_alpha()
        mid = MIXED_VALUES.estimated_alpha()
        high = ONE_DOMINATED.estimated_alpha()
        assert low < 0.35
        assert 0.35 < mid < 0.65
        assert high > 0.65
        assert low < mid < high

    def test_density_consistency(self):
        model = OperandValueModel()
        assert 0.0 <= model.expected_bit_density() <= 1.0

    def test_zero_bias_controls_alpha(self):
        zeroish = OperandValueModel(zero_sign_bias=0.95)
        onesish = OperandValueModel(zero_sign_bias=0.05)
        assert zeroish.estimated_alpha() < onesish.estimated_alpha()

    def test_validation(self):
        with pytest.raises(ValueError):
            OperandValueModel(narrow_fraction=1.5)
        with pytest.raises(ValueError):
            OperandValueModel(narrow_bits=0)
