"""Tests for the layered result stores and the write-once shared store.

Covers the two reliability satellites directly: corrupt/truncated
entries degrade to a miss-and-rewrite (never an exception), and two
processes racing to publish the same key under the shared-directory
store leave exactly one intact entry behind.
"""

import multiprocessing
import os
import pickle

import pytest

from repro.cpu.simulator import clear_simulation_cache
from repro.cpu.workloads import get_benchmark
from repro.exec import cache
from repro.exec.cache import ResultCache, StoreStats, VerifyReport
from repro.exec.engine import BatchReport, run_jobs
from repro.exec.jobs import SimulationJob
from repro.exec.stores import (
    LayeredStore,
    SharedDirectoryStore,
    parse_store_spec,
    store_layers,
)

KEY_A = "aa" + "0" * 62
KEY_B = "bb" + "0" * 62


def _garble(store: ResultCache, key: str) -> None:
    """Truncate ``key``'s entry mid-pickle, as a crashed writer would."""
    path = store._path(key)
    data = path.read_bytes()
    path.write_bytes(data[: max(1, len(data) // 2)])


class TestCorruptEntries:
    """Satellite: damage degrades to a miss and a rewrite, never a raise."""

    def test_truncated_entry_is_a_miss_and_is_removed(self, tmp_path):
        store = ResultCache(tmp_path)
        store.put(KEY_A, {"value": list(range(100))})
        _garble(store, KEY_A)
        assert store.get(KEY_A) is None
        assert store.misses == 1
        assert not store._path(KEY_A).exists()

    def test_next_writer_rewrites_after_the_miss(self, tmp_path):
        store = ResultCache(tmp_path)
        store.put(KEY_A, "first")
        _garble(store, KEY_A)
        assert store.get(KEY_A) is None
        store.put(KEY_A, "rewritten")
        assert store.get(KEY_A) == "rewritten"

    def test_garbage_bytes_are_a_miss_too(self, tmp_path):
        store = ResultCache(tmp_path)
        path = store._path(KEY_A)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"this was never a pickle")
        assert store.get(KEY_A) is None
        assert not path.exists()

    def test_shared_store_reader_heals_corruption(self, tmp_path):
        store = SharedDirectoryStore(tmp_path)
        store.put(KEY_A, "payload")
        _garble(store, KEY_A)
        assert store.get(KEY_A) is None  # miss + removal ...
        store.put(KEY_A, "payload")  # ... so write-once republishes
        assert store.get(KEY_A) == "payload"


class TestSharedDirectoryStore:
    def test_roundtrip(self, tmp_path):
        store = SharedDirectoryStore(tmp_path)
        store.put(KEY_A, {"answer": 42})
        assert store.get(KEY_A) == {"answer": 42}
        assert store.describe() == f"shared:{tmp_path}"

    def test_first_writer_wins(self, tmp_path):
        store = SharedDirectoryStore(tmp_path)
        store.put(KEY_A, "first")
        store.put(KEY_A, "second")
        assert store.get(KEY_A) == "first"
        assert store.publish_skipped == 1
        assert store.writes == 1

    def test_lost_link_race_keeps_the_winner(self, tmp_path):
        """A winner appearing between the exists() check and the link."""
        store = SharedDirectoryStore(tmp_path)
        winner = SharedDirectoryStore(tmp_path)
        original_exists = type(store._path(KEY_A)).exists

        fired = []

        def exists_then_publish(path_self):
            present = original_exists(path_self)
            if not present and path_self.suffix == ".pkl" and not fired:
                fired.append(True)
                winner.put(KEY_A, "winner")
            return present

        from unittest import mock

        with mock.patch("pathlib.Path.exists", exists_then_publish):
            store.put(KEY_A, "loser")
        assert store.get(KEY_A) == "winner"
        assert store.publish_skipped == 1

    def test_lost_race_against_corrupt_winner_repairs_it(self, tmp_path):
        store = SharedDirectoryStore(tmp_path)
        winner = SharedDirectoryStore(tmp_path)
        original_exists = type(store._path(KEY_A)).exists

        fired = []

        def exists_then_publish_garbage(path_self):
            present = original_exists(path_self)
            if not present and path_self.suffix == ".pkl" and not fired:
                fired.append(True)
                winner.put(KEY_A, "winner")
                _garble(winner, KEY_A)
            return present

        from unittest import mock

        with mock.patch("pathlib.Path.exists", exists_then_publish_garbage):
            store.put(KEY_A, "repaired")
        assert store.get(KEY_A) == "repaired"
        assert store.publish_skipped == 0

    def test_no_temp_files_left_behind(self, tmp_path):
        store = SharedDirectoryStore(tmp_path)
        store.put(KEY_A, "x")
        store.put(KEY_A, "y")
        assert not list(tmp_path.glob("**/*.tmp"))


def _racing_publish(directory, key, marker, barrier):
    store = SharedDirectoryStore(directory)
    payload = bytes([marker]) * 262_144  # big enough that a torn write shows
    barrier.wait(timeout=30)
    store.put(key, payload)


class TestConcurrentPublish:
    """Satellite: two processes racing one key publish cleanly."""

    @pytest.mark.parametrize("round_", range(3))
    def test_race_leaves_exactly_one_intact_entry(self, tmp_path, round_):
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        procs = [
            ctx.Process(
                target=_racing_publish, args=(str(tmp_path), KEY_A, marker, barrier)
            )
            for marker in (ord("A"), ord("B"))
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        value = SharedDirectoryStore(tmp_path).get(KEY_A)
        # Never torn: the entry is one writer's payload in full.
        assert value in (b"A" * 262_144, b"B" * 262_144)
        assert not list(tmp_path.glob("**/*.tmp"))


class TestLayeredStore:
    def _layered(self, tmp_path):
        return LayeredStore(
            ResultCache(tmp_path / "local"), SharedDirectoryStore(tmp_path / "shared")
        )

    def test_write_back_lands_in_both_tiers(self, tmp_path):
        store = self._layered(tmp_path)
        store.put(KEY_A, "value")
        assert store.local.get(KEY_A) == "value"
        assert store.shared.get(KEY_A) == "value"
        assert store.writes == 1

    def test_read_through_promotes_shared_hits(self, tmp_path):
        store = self._layered(tmp_path)
        store.shared.put(KEY_A, "published-elsewhere")
        assert store.get(KEY_A) == "published-elsewhere"
        assert store.shared_hits == 1
        assert store.local.get(KEY_A) == "published-elsewhere"  # promoted
        assert store.get(KEY_A) == "published-elsewhere"
        assert store.local_hits == 1

    def test_miss_counts(self, tmp_path):
        store = self._layered(tmp_path)
        assert store.get(KEY_B) is None
        assert store.misses == 1

    def test_directory_is_the_local_tier(self, tmp_path):
        store = self._layered(tmp_path)
        assert store.directory == tmp_path / "local"
        assert "layered(local=" in store.describe()
        assert "LayeredStore" in repr(store)


class TestStoreLayers:
    def test_plain_cache_is_one_layer(self, tmp_path):
        store = ResultCache(tmp_path)
        assert store_layers(store) == [("local", store)]

    def test_layered_splits_into_two(self, tmp_path):
        store = LayeredStore(
            ResultCache(tmp_path / "l"), SharedDirectoryStore(tmp_path / "s")
        )
        assert store_layers(store) == [("local", store.local), ("shared", store.shared)]

    def test_non_directory_store_rejected(self):
        with pytest.raises(TypeError):
            store_layers(object())


class TestParseStoreSpec:
    def test_local(self, tmp_path):
        store = parse_store_spec("local", tmp_path)
        assert type(store) is ResultCache and store.directory == tmp_path

    def test_default_is_local(self, tmp_path):
        assert type(parse_store_spec(None, tmp_path)) is ResultCache

    def test_shared(self, tmp_path):
        store = parse_store_spec(f"shared:{tmp_path}", None)
        assert isinstance(store, SharedDirectoryStore)
        assert store.directory == tmp_path

    def test_layered(self, tmp_path):
        store = parse_store_spec(f"layered:{tmp_path / 's'}", tmp_path / "l")
        assert isinstance(store, LayeredStore)
        assert store.local.directory == tmp_path / "l"
        assert store.shared.directory == tmp_path / "s"

    def test_shared_tilde_expands_to_home(self, tmp_path, monkeypatch):
        """Regression: ``--store shared:~/fleet`` must expand the ``~``
        exactly like the local tier does, never create a literal
        ``./~/fleet`` directory."""
        monkeypatch.setenv("HOME", str(tmp_path))
        store = parse_store_spec("shared:~/fleet", None)
        assert store.directory == tmp_path / "fleet"
        assert "~" not in str(store.directory)

    def test_layered_tilde_expands_to_home(self, tmp_path, monkeypatch):
        monkeypatch.setenv("HOME", str(tmp_path))
        store = parse_store_spec("layered:~/fleet", tmp_path / "l")
        assert store.shared.directory == tmp_path / "fleet"

    def test_malformed_specs_rejected(self, tmp_path):
        for spec in ("bogus", "shared:", "layered:", "local:dir"):
            with pytest.raises(ValueError):
                parse_store_spec(spec, tmp_path)

    def test_configure_accepts_spec_strings(self, tmp_path, preserve_cache_config):
        store = cache.configure(
            cache_dir=tmp_path / "l", store=f"layered:{tmp_path / 's'}"
        )
        assert isinstance(store, LayeredStore)
        assert cache.active() is store

    def test_configure_reads_env_store(self, tmp_path, preserve_cache_config, monkeypatch):
        monkeypatch.setenv(cache.ENV_STORE, f"shared:{tmp_path}")
        store = cache.configure()
        assert isinstance(store, SharedDirectoryStore)

    def test_configure_local_resets_a_layered_store(self, tmp_path, preserve_cache_config):
        cache.configure(cache_dir=tmp_path / "l", store=f"layered:{tmp_path / 's'}")
        store = cache.configure(cache_dir=tmp_path / "l", store="local")
        assert type(store) is ResultCache


class TestMaintenance:
    def test_stats(self, tmp_path):
        store = ResultCache(tmp_path)
        assert store.stats() == StoreStats(entries=0, total_bytes=0)
        store.put(KEY_A, "x")
        store.put(KEY_B, list(range(50)))
        stats = store.stats()
        assert stats.entries == 2
        assert stats.total_bytes == sum(p.stat().st_size for _, p in store.entries())

    def test_verify_removes_corrupt_entries(self, tmp_path):
        store = ResultCache(tmp_path)
        store.put(KEY_A, "good")
        store.put(KEY_B, "doomed")
        _garble(store, KEY_B)
        report = store.verify()
        assert report == VerifyReport(checked=2, ok=1, corrupt=1)
        assert store.get(KEY_A) == "good"
        assert not store._path(KEY_B).exists()
        assert store.verify() == VerifyReport(checked=1, ok=1, corrupt=0)

    def test_gc_removes_only_old_entries(self, tmp_path):
        store = ResultCache(tmp_path)
        store.put(KEY_A, "old")
        store.put(KEY_B, "fresh")
        old_path = store._path(KEY_A)
        stale = old_path.stat().st_mtime - 10 * 86_400
        os.utime(old_path, (stale, stale))
        removed = store.gc(older_than_seconds=7 * 86_400)
        assert removed == 1
        assert store.get(KEY_A) is None
        assert store.get(KEY_B) == "fresh"

    def test_entries_yields_keys(self, tmp_path):
        store = ResultCache(tmp_path)
        store.put(KEY_A, 1)
        [(key, path)] = list(store.entries())
        assert key == KEY_A and path.exists()


class TestFleetDedup:
    """The acceptance-criteria shape: a warm fleet run executes nothing."""

    @pytest.fixture
    def _fresh_memo(self, preserve_cache_config):
        clear_simulation_cache()
        yield
        clear_simulation_cache()

    def test_warm_rerun_through_shared_store_executes_zero_jobs(
        self, tmp_path, _fresh_memo
    ):
        shared = tmp_path / "shared"
        job = SimulationJob(
            profile=get_benchmark("gzip"),
            num_instructions=1200,
            warmup_instructions=300,
            seed=1,
        )
        # Host 1 runs cold, publishing through its layered store.
        cache.configure(cache_dir=tmp_path / "host1", store=f"layered:{shared}")
        cold = run_jobs([job], backend="serial")
        # Host 2: fresh local tier and memo, same shared tier.
        clear_simulation_cache()
        cache.configure(cache_dir=tmp_path / "host2", store=f"layered:{shared}")
        report = BatchReport()
        warm = run_jobs([job], backend="serial", report=report)
        assert report.executed == 0
        assert report.cache_hits == 1
        assert pickle.dumps(cold[0]) == pickle.dumps(warm[0])
        # The shared hit was promoted into host 2's local tier.
        store = cache.active()
        assert store.shared_hits == 1
        assert len(store.local) == 1
