"""Tests for the analytic experiments (Table 1, Figures 3-5).

Each test asserts the paper's published claims against the regenerated
data, so a regression in the model shows up as a broken paper claim.
"""

import pytest

from repro.circuits.gates import DominoStyle
from repro.experiments import figure3, figure4, figure5, table1


class TestTable1Experiment:
    def test_model_matches_reference(self):
        result = table1.run()
        for style in DominoStyle:
            measured = result.measured[style]
            reference = result.reference[style]
            assert measured.dynamic_energy_fj == pytest.approx(
                reference.dynamic_energy_fj, rel=0.01
            )
            assert measured.leakage_hi_fj == pytest.approx(
                reference.leakage_hi_fj, rel=0.01
            )

    def test_render_contains_all_styles(self):
        text = table1.render(table1.run())
        for style in DominoStyle:
            assert style.value in text
        assert "p =" in text  # derived constants footer


class TestFigure3Experiment:
    def test_breakeven_claims(self):
        result = figure3.run()
        assert result.breakeven_cycles[0.1] == 17  # the paper's number
        # Break-even barely moves from alpha 0.1 to 0.5.
        assert abs(result.breakeven_cycles[0.5] - 17) <= 2

    def test_sleep_beats_idle_beyond_breakeven(self):
        result = figure3.run()
        curve = result.curves[0.1]
        assert curve.sleep_pj[25] < curve.uncontrolled_pj[25]
        assert curve.sleep_pj[5] > curve.uncontrolled_pj[5]

    def test_render(self):
        text = figure3.render(figure3.run())
        assert "break-even at alpha=0.1: 17 cycles" in text


class TestFigure4Experiment:
    @pytest.fixture(scope="class")
    def result(self):
        return figure4.run()

    def test_breakeven_near_term_point(self, result):
        """~20 cycles at p=0.05 for alpha=0.5 (the vertical line in 4a)."""
        index = result.p_grid.index(0.05)
        for alpha, values in result.breakeven:
            if alpha == 0.5:
                assert values[index] == pytest.approx(20.4, abs=0.5)

    def test_panel_b_crossover(self, result):
        """Figure 4b: MaxSleep loses at small p, wins at large p."""
        panel = result.panels["b"][0.10]
        first = panel[0]
        last = panel[-1]
        assert first.max_sleep > first.always_active
        assert last.max_sleep < last.always_active

    def test_panel_c_amortization(self, result):
        """Figure 4c: at 100-cycle idles MaxSleep hugs NoOverhead."""
        panel = result.panels["c"][0.10]
        for energies in panel:
            assert energies.max_sleep - energies.no_overhead < 0.07

    def test_panel_d_worst_case(self, result):
        """Figure 4d: 1-cycle idles make MaxSleep the worst policy
        everywhere in the sweep."""
        panel = result.panels["d"][0.50]
        for energies in panel:
            assert energies.max_sleep >= energies.always_active - 1e-12

    def test_render_mentions_all_panels(self, result):
        text = figure4.render(result)
        for label in ("4a", "4b", "4c", "4d"):
            assert f"Figure {label}" in text


class TestFigure5Experiment:
    def test_crossover_near_analytic_breakeven(self):
        result = figure5.run()
        assert result.curves.crossover_interval() == pytest.approx(
            result.breakeven, abs=1.5
        )

    def test_gradual_hedges(self):
        result = figure5.run()
        curves = result.curves
        n = curves.num_slices
        # Short: below MaxSleep. Long: below AlwaysActive. Near
        # break-even: above both (the hedging premium).
        assert curves.gradual_sleep[2] < curves.max_sleep[2]
        assert curves.gradual_sleep[100] < curves.always_active[100]
        assert curves.gradual_sleep[n] > curves.max_sleep[n]
        assert curves.gradual_sleep[n] > curves.always_active[n]

    def test_render(self):
        text = figure5.render(figure5.run())
        assert "Figure 5c" in text
        assert "break-even" in text
