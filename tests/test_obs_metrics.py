"""The metrics registry: instruments, quantiles, deltas, and merges."""

import pytest

from repro.obs import metrics
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    JOB_SECONDS,
    Histogram,
    MetricsRegistry,
    histogram_quantile,
)


class TestCounter:
    def test_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("c").add(2.0)
        registry.counter("c").inc()
        assert registry.counter("c").value == 3.0

    def test_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c").add(-1.0)

    def test_same_instrument_returned(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")


class TestGauge:
    def test_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(5)
        registry.gauge("g").set(2.5)
        assert registry.gauge("g").value == 2.5


class TestHistogram:
    def test_bucket_placement(self):
        h = Histogram("h", boundaries=(1.0, 2.0, 3.0))
        for value in (0.5, 1.0, 1.5, 2.5, 99.0):
            h.observe(value)
        # v <= bound lands at that bound's bucket; 99 overflows.
        assert h.counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.min == 0.5
        assert h.max == 99.0

    def test_rejects_unsorted_boundaries(self):
        with pytest.raises(ValueError):
            Histogram("h", boundaries=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", boundaries=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", boundaries=())

    def test_snapshot_is_json_ready(self):
        h = Histogram("h", boundaries=(1.0,))
        h.observe(0.5)
        snap = h.snapshot()
        assert snap == {
            "boundaries": [1.0],
            "counts": [1, 0],
            "count": 1,
            "sum": 0.5,
            "min": 0.5,
            "max": 0.5,
        }


class TestHistogramQuantile:
    def test_empty_histogram_is_zero(self):
        assert histogram_quantile(Histogram("h").snapshot(), 0.5) == 0.0

    def test_interpolates_within_bucket(self):
        h = Histogram("h", boundaries=(10.0, 20.0))
        for _ in range(10):
            h.observe(15.0)  # all mass in the (10, 20] bucket
        q50 = h.quantile(0.5)
        assert 10.0 < q50 <= 20.0

    def test_monotone_in_q(self):
        h = Histogram("h")
        for value in (0.002, 0.02, 0.2, 2.0, 20.0):
            h.observe(value)
        marks = [h.quantile(q) for q in (0.1, 0.5, 0.9, 0.99)]
        assert marks == sorted(marks)

    def test_overflow_bucket_clamps_to_observed_max(self):
        h = Histogram("h", boundaries=(1.0,))
        h.observe(500.0)
        assert h.quantile(0.99) <= 500.0
        assert h.quantile(0.99) >= 1.0

    def test_clamped_to_observed_range(self):
        # Interpolation inside a wide bucket must not report a quantile
        # beyond what was actually seen: one slow outlier in the
        # (0.1, 0.25] bucket must not drag p99 past its true value.
        h = Histogram("h", boundaries=(0.05, 0.1, 0.25))
        for _ in range(30):
            h.observe(0.07)
        h.observe(0.102)
        assert h.quantile(0.99) <= 0.102
        assert h.quantile(0.01) >= 0.07

    def test_rejects_out_of_range_q(self):
        with pytest.raises(ValueError):
            histogram_quantile(Histogram("h").snapshot(), 1.5)

    def test_quantiles_helper_labels(self):
        h = Histogram("h")
        h.observe(0.05)
        marks = metrics.quantiles(h.snapshot())
        assert set(marks) == {"p50", "p90", "p99"}


class TestSnapshotDeltaAbsorb:
    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").add(1.0)
        registry.gauge("g").set(2.0)
        registry.histogram("h").observe(0.5)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 1.0}
        assert snap["gauges"] == {"g": 2.0}
        assert snap["histograms"]["h"]["count"] == 1

    def test_delta_since_reports_only_changes(self):
        registry = MetricsRegistry()
        registry.counter("stable").add(5.0)
        registry.histogram("h").observe(1.0)
        before = registry.snapshot()
        registry.counter("grew").add(2.0)
        registry.histogram("h").observe(3.0)
        delta = registry.delta_since(before)
        assert delta["counters"] == {"grew": 2.0}
        assert delta["histograms"]["h"]["count"] == 1
        assert delta["histograms"]["h"]["sum"] == 3.0
        assert "stable" not in delta["counters"]

    def test_idle_delta_is_empty(self):
        registry = MetricsRegistry()
        registry.counter("c").add(1.0)
        before = registry.snapshot()
        delta = registry.delta_since(before)
        assert delta == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_absorb_round_trip(self):
        # worker-side: accrue, delta; coordinator-side: absorb — totals
        # must match as if the work happened locally.
        worker = MetricsRegistry()
        before = worker.snapshot()
        worker.counter("stage_seconds.kernel").add(1.5)
        worker.histogram(JOB_SECONDS).observe(0.2)
        worker.histogram(JOB_SECONDS).observe(0.4)
        delta = worker.delta_since(before)

        coordinator = MetricsRegistry()
        coordinator.histogram(JOB_SECONDS).observe(0.1)
        coordinator.absorb(delta)
        assert coordinator.counter("stage_seconds.kernel").value == 1.5
        merged = coordinator.histogram(JOB_SECONDS)
        assert merged.count == 3
        assert merged.sum == pytest.approx(0.7)
        assert merged.min == 0.1
        assert merged.max == 0.4

    def test_absorb_survives_malformed_payloads(self):
        registry = MetricsRegistry()
        registry.absorb("garbage")
        registry.absorb({"counters": {"c": "NaN-ish"}, "histograms": {"h": 7}})
        assert registry.counters == {}

    def test_absorb_boundary_skew_folds_into_totals(self):
        registry = MetricsRegistry()
        registry.histogram("h", boundaries=(1.0, 2.0)).observe(0.5)
        registry.absorb(
            {
                "histograms": {
                    "h": {
                        "boundaries": [5.0],
                        "counts": [3, 0],
                        "count": 3,
                        "sum": 9.0,
                        "min": 3.0,
                        "max": 3.0,
                    }
                }
            }
        )
        h = registry.histogram("h")
        assert h.count == 4  # total mass merged
        assert h.sum == pytest.approx(9.5)
        assert sum(h.counts) == 1  # mismatched buckets untouched

    def test_delta_min_max_are_cumulative_not_windowed(self):
        """The documented merge contract: a histogram delta carries the
        *cumulative* min/max (the window's own extremes are not
        recoverable from two snapshots), so they bound every windowed
        observation conservatively."""
        registry = MetricsRegistry()
        registry.histogram("h").observe(0.001)
        registry.histogram("h").observe(10.0)
        before = registry.snapshot()
        registry.histogram("h").observe(0.5)  # the window's only value
        delta = registry.delta_since(before)["histograms"]["h"]
        assert delta["count"] == 1 and delta["sum"] == pytest.approx(0.5)
        # Cumulative extremes, not 0.5/0.5 — conservative bounds.
        assert delta["min"] == 0.001
        assert delta["max"] == 10.0

    def test_absorbed_min_max_stay_conservative(self):
        """Absorbing a cumulative-extreme delta can only widen the
        target's min/max, never tighten them — the quantile clamp the
        serve-layer latency reports rely on."""
        target = MetricsRegistry()
        target.histogram(JOB_SECONDS).observe(0.2)
        source = MetricsRegistry()
        source.histogram(JOB_SECONDS).observe(0.05)
        source.histogram(JOB_SECONDS).observe(7.0)
        before = source.snapshot()
        source.histogram(JOB_SECONDS).observe(0.3)
        target.absorb(source.delta_since(before))
        merged = target.histogram(JOB_SECONDS)
        # Widened to the absorbed cumulative extremes: every windowed
        # observation (0.3) and every local one (0.2) lies inside.
        assert merged.min == 0.05
        assert merged.max == 7.0
        assert merged.count == 2

    def test_windowed_quantiles_clamp_inside_absorbed_extremes(self):
        """Quantiles over a merged delta land within [min, max] even
        when those extremes are absorbed cumulative values."""
        target = MetricsRegistry()
        source = MetricsRegistry()
        source.histogram(JOB_SECONDS).observe(0.004)
        before = source.snapshot()
        for value in (0.02, 0.03, 0.04):
            source.histogram(JOB_SECONDS).observe(value)
        target.absorb(source.delta_since(before))
        snap = target.histogram(JOB_SECONDS).snapshot()
        for q in (0.5, 0.9, 0.99):
            estimate = histogram_quantile(snap, q)
            assert snap["min"] <= estimate <= snap["max"]

    def test_delta_ships_whole_histogram_when_new(self):
        registry = MetricsRegistry()
        before = registry.snapshot()
        registry.histogram("h").observe(1.0)
        delta = registry.delta_since(before)
        assert delta["histograms"]["h"]["count"] == 1

    def test_remove_prefixed(self):
        registry = MetricsRegistry()
        registry.counter("stage_seconds.kernel").add(1.0)
        registry.counter("other").add(1.0)
        registry.remove_prefixed("stage_seconds.")
        assert list(registry.counters) == ["other"]


class TestModuleRegistry:
    def test_registry_is_process_wide(self):
        assert metrics.registry() is metrics.registry()

    def test_default_latency_buckets_strictly_increasing(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(set(DEFAULT_LATENCY_BUCKETS))


class TestStagetimeReHome:
    """stagetime is now a compat shim over the registry's counters."""

    def test_add_lands_in_registry(self):
        from repro.util import stagetime

        stagetime.reset()
        try:
            stagetime.add("kernel", 2.0)
            assert (
                metrics.registry().counter("stage_seconds.kernel").value == 2.0
            )
            assert stagetime.totals() == {"kernel": 2.0}
        finally:
            stagetime.reset()

    def test_registry_absorb_feeds_stage_totals(self):
        # The SSH relay path: a worker's metrics delta carries its
        # stage counters; absorbing it updates stagetime.totals().
        from repro.util import stagetime

        stagetime.reset()
        try:
            metrics.registry().absorb(
                {"counters": {"stage_seconds.generate": 0.75}}
            )
            assert stagetime.totals() == {"generate": 0.75}
        finally:
            stagetime.reset()

    def test_reset_only_clears_stage_counters(self):
        from repro.util import stagetime

        metrics.registry().counter("unrelated.counter").add(1.0)
        stagetime.add("kernel", 1.0)
        stagetime.reset()
        assert stagetime.totals() == {}
        assert metrics.registry().counter("unrelated.counter").value == 1.0
        metrics.registry().remove_prefixed("unrelated.")

    def test_timed_emits_span_when_tracing(self):
        from repro.obs import tracer
        from repro.util import stagetime

        tracer.reset()
        tracer.enable(True)
        try:
            with stagetime.timed("kernel"):
                pass
            names = [e["name"] for e in tracer.events()]
            assert "stage.kernel" in names
        finally:
            tracer.enable(False)
            tracer.reset()
            stagetime.reset()
