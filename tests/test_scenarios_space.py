"""The scenario space: families, deterministic sampling, stable IDs.

The determinism gate lives here: sampling the same space with the same
seed must yield identical scenario IDs and byte-identical traces
(asserted with ``==``), and scenario-backed jobs must occupy cache keys
disjoint from the nine seed benchmarks'.
"""

import dataclasses

import pytest

from repro.cpu.trace import validate_trace
from repro.cpu.workloads import BENCHMARKS, WorkloadProfile, generate_trace
from repro.exec.jobs import SimulationJob
from repro.experiments.common import DEFAULT_SCALE, benchmark_jobs
from repro.experiments.robustness import robustness_jobs
from repro.scenarios import (
    DEFAULT_SPACE,
    FAMILIES,
    PHASED_FAMILY,
    ParamRange,
    ScenarioSpace,
    ScenarioWorkload,
    definitions_digest,
    family_names,
    get_family,
    sample_scenarios,
)
from repro.scenarios.phased import PhasedProfile
from repro.util.rng import DeterministicRng


class TestFamilies:
    def test_the_five_families_exist(self):
        assert family_names() == [
            "memory_bound", "branch_heavy", "fp_dense", "ilp_rich",
            "bursty_idle",
        ]

    def test_get_family_suggests_close_matches(self):
        with pytest.raises(KeyError, match="did you mean memory_bound"):
            get_family("memory-bound")

    def test_get_family_lists_known_when_no_match(self):
        with pytest.raises(KeyError, match="known:"):
            get_family("zzz")

    def test_param_range_kinds(self):
        rng = DeterministicRng(5)
        assert isinstance(ParamRange(1, 9, "int").sample(rng), int)
        drawn = ParamRange(0.2, 0.4).sample(rng)
        assert 0.2 <= drawn <= 0.4
        log_drawn = ParamRange(1024, 1024 * 1024, "log_int").sample(rng)
        assert 1024 <= log_drawn <= 1024 * 1024

    def test_param_range_rejects_bad_specs(self):
        with pytest.raises(ValueError, match="kind"):
            ParamRange(0, 1, "gaussian")
        with pytest.raises(ValueError, match="empty range"):
            ParamRange(2, 1)
        with pytest.raises(ValueError, match="positive lower bound"):
            ParamRange(0, 8, "log_int")

    def test_every_family_samples_valid_profiles(self):
        """Any draw in any family must satisfy WorkloadProfile validation
        (construction runs __post_init__) across many seeds."""
        for name, family in FAMILIES.items():
            for k in range(25):
                rng = DeterministicRng(k).child("validity", name)
                profile = ScenarioWorkload(
                    name=f"check-{name}-{k}",
                    description="validity check",
                    family=name,
                    **family.sample_fields(rng),
                )
                assert 1 <= family.sample_fus(rng) <= 4
                assert profile.frac_int_alu >= 0.0


class TestSampling:
    def test_same_seed_same_ids_and_scenarios(self):
        first = sample_scenarios(18, seed=42)
        second = sample_scenarios(18, seed=42)
        assert [s.scenario_id for s in first] == [
            s.scenario_id for s in second
        ]
        assert first == second  # full dataclass equality, profiles included

    def test_different_seed_different_scenarios(self):
        assert sample_scenarios(6, seed=1) != sample_scenarios(6, seed=2)

    def test_prefix_stability(self):
        """Growing the count appends; existing scenarios never change."""
        assert sample_scenarios(7, seed=3) == sample_scenarios(19, seed=3)[:7]

    def test_round_robin_family_assignment(self):
        scenarios = sample_scenarios(13, seed=1)
        expected = list(DEFAULT_SPACE.families)
        for i, scenario in enumerate(scenarios):
            assert scenario.family == expected[i % len(expected)]
            assert scenario.index == i // len(expected)

    def test_ids_embed_family_seed_and_index(self):
        scenario = sample_scenarios(7, seed=9)[6]
        assert scenario.scenario_id.startswith("scn-memory_bound-9-001-")

    def test_family_subset_sampling(self):
        scenarios = sample_scenarios(6, seed=1, families=["fp_dense"])
        assert all(s.family == "fp_dense" for s in scenarios)
        assert all(s.profile.frac_fp >= 0.20 for s in scenarios)

    def test_phased_scenarios_compose_two_base_families(self):
        scenarios = sample_scenarios(4, seed=5, families=[PHASED_FAMILY])
        for scenario in scenarios:
            assert isinstance(scenario.profile, PhasedProfile)
            first, second = scenario.profile.members
            assert first.family != second.family
            assert scenario.num_fus == max(
                m.reference_fus for m in scenario.profile.members
            )

    def test_phased_members_respect_family_restriction(self):
        """A family-restricted space must not leak excluded families into
        phased members (the catalog and per-family tables would lie)."""
        scenarios = sample_scenarios(
            4, seed=5, families=["fp_dense", PHASED_FAMILY]
        )
        for scenario in scenarios:
            if scenario.family == PHASED_FAMILY:
                assert all(
                    m.family == "fp_dense" for m in scenario.profile.members
                )

    def test_space_rejects_bad_families(self):
        with pytest.raises(ValueError, match="unknown scenario family"):
            ScenarioSpace(families=("no_such_family",))
        with pytest.raises(ValueError, match="duplicate"):
            ScenarioSpace(families=("fp_dense", "fp_dense"))
        with pytest.raises(ValueError, match="at least one"):
            ScenarioSpace(families=())

    def test_space_family_typo_gets_suggestions(self):
        """The runtime path users hit (CLI --families) must suggest
        close matches, same as get_family()."""
        with pytest.raises(ValueError, match="did you mean memory_bound"):
            ScenarioSpace(families=("memory-bound",))
        with pytest.raises(ValueError, match="did you mean phased"):
            sample_scenarios(2, families=["phases"])

    def test_count_must_be_positive(self):
        with pytest.raises(ValueError, match="count"):
            sample_scenarios(0)


class TestTraceDeterminism:
    """The gate: same seed => byte-identical traces, asserted with ==."""

    def test_sampled_scenario_traces_identical(self):
        for scenario in sample_scenarios(6, seed=77):
            first = generate_trace(scenario.profile, 2_500, seed=4)
            second = generate_trace(scenario.profile, 2_500, seed=4)
            assert first == second
            validate_trace(first)

    def test_resampled_space_reproduces_traces(self):
        """Traces survive a full resample round trip, not just an object
        identity: sample -> trace == resample -> trace."""
        first = sample_scenarios(6, seed=13)
        second = sample_scenarios(6, seed=13)
        for a, b in zip(first, second):
            assert a.profile is not b.profile
            assert (
                generate_trace(a.profile, 2_000, seed=1)
                == generate_trace(b.profile, 2_000, seed=1)
            )


class TestCacheIdentity:
    def test_scenario_jobs_disjoint_from_seed_benchmarks(self):
        """Scenario-backed jobs must never collide with the nine seed
        benchmarks in the persistent cache."""
        bench_keys = {
            job.cache_key()
            for job in benchmark_jobs(scale=DEFAULT_SCALE)
        }
        scenario_keys = {
            job.cache_key()
            for job in robustness_jobs(
                sample_scenarios(12, seed=1), scale=DEFAULT_SCALE
            )
        }
        assert len(scenario_keys) == 12  # all distinct among themselves
        assert bench_keys.isdisjoint(scenario_keys)

    def test_catalog_digest_is_part_of_the_cache_key(self):
        """Changing the family definitions (digest) must invalidate
        cached scenario results even if every sampled field matches."""
        scenario = sample_scenarios(1, seed=1)[0]
        profile = scenario.profile
        assert isinstance(profile, ScenarioWorkload)
        assert profile.catalog_digest == definitions_digest()
        altered = dataclasses.replace(profile, catalog_digest="0" * 64)
        job = SimulationJob(profile=profile, num_instructions=2_000)
        altered_job = SimulationJob(profile=altered, num_instructions=2_000)
        assert job.cache_key() != altered_job.cache_key()

    def test_scenario_workload_distinct_from_plain_profile(self):
        """A ScenarioWorkload never collides with a WorkloadProfile of
        identical field values (class tag is part of the canonical form)."""
        scenario = sample_scenarios(1, seed=1)[0]
        profile = scenario.profile
        base_fields = {
            field.name: getattr(profile, field.name)
            for field in dataclasses.fields(WorkloadProfile)
        }
        plain = WorkloadProfile(**base_fields)
        assert (
            SimulationJob(profile=profile, num_instructions=2_000).cache_key()
            != SimulationJob(profile=plain, num_instructions=2_000).cache_key()
        )

    def test_definitions_digest_stable_within_process(self):
        assert definitions_digest() == definitions_digest()
        assert len(definitions_digest()) == 64

    def test_template_edits_change_the_digest(self, monkeypatch):
        """The digest must cover the shared template, not just the
        family ranges — template edits change every sampled scenario."""
        from repro.scenarios import families as families_module

        before = definitions_digest()
        edited = dict(families_module._TEMPLATE)
        edited["stack_prob"] = 0.31
        monkeypatch.setattr(families_module, "_TEMPLATE", edited)
        assert definitions_digest() != before

    def test_family_range_edits_change_the_digest(self, monkeypatch):
        from repro.scenarios import families as families_module

        before = definitions_digest()
        family = families_module.FAMILIES["fp_dense"]
        import dataclasses

        edited = dataclasses.replace(
            family, fus=ParamRange(1, 4, "int")
        )
        monkeypatch.setitem(families_module.FAMILIES, "fp_dense", edited)
        assert definitions_digest() != before

    def test_sampled_names_do_not_shadow_benchmarks(self):
        for scenario in sample_scenarios(12, seed=1):
            assert scenario.scenario_id not in BENCHMARKS
