"""Run manifests: build, validate, round-trip, and render."""

import json

import pytest

from repro.cpu.simulator import clear_simulation_cache
from repro.cpu.workloads import get_benchmark
from repro.exec import cache
from repro.exec.engine import reset_telemetry, run_jobs
from repro.exec.hashing import CACHE_SCHEMA_VERSION, model_fingerprint
from repro.exec.jobs import SimulationJob
from repro.obs import manifest


@pytest.fixture
def fresh_cache(tmp_path, preserve_cache_config):
    store = cache.configure(cache_dir=tmp_path / "manifest-cache")
    clear_simulation_cache()
    yield store
    clear_simulation_cache()


@pytest.fixture
def fresh_telemetry():
    reset_telemetry()
    yield
    reset_telemetry()


def _run_one_job():
    job = SimulationJob(
        profile=get_benchmark("gzip"), num_instructions=1200, seed=1
    )
    run_jobs([job], backend="serial")


class TestToJson:
    def test_canonical_form(self):
        text = manifest.to_json({"b": 1, "a": [2, 3]})
        assert text == '{\n  "a": [\n    2,\n    3\n  ],\n  "b": 1\n}\n'

    def test_round_trips(self):
        document = {"nested": {"x": 1.5, "y": None}, "list": [1, "two"]}
        assert json.loads(manifest.to_json(document)) == document


class TestBuildRunManifest:
    def test_schema_and_identity(self, fresh_cache, fresh_telemetry):
        document = manifest.build_run_manifest(argv=["table3", "--quick"])
        assert document["schema"] == manifest.MANIFEST_SCHEMA
        assert document["argv"] == ["table3", "--quick"]
        assert document["model_fingerprint"] == model_fingerprint()
        assert document["cache_schema_version"] == CACHE_SCHEMA_VERSION
        assert manifest.validate_run_manifest(document) == []

    def test_counts_executed_jobs(self, fresh_cache, fresh_telemetry):
        _run_one_job()
        document = manifest.build_run_manifest()
        assert document["jobs"]["executed"] == 1
        assert document["jobs"]["cache_misses"] == 1
        assert "serial" in document["backends"]
        assert document["backends"]["serial"]["latency_quantiles"]["p50"] > 0.0

    def test_cache_tiers_reflect_store(self, fresh_cache, fresh_telemetry):
        _run_one_job()
        document = manifest.build_run_manifest()
        (tier,) = document["cache_tiers"]
        assert tier["tier"] == "local"
        assert tier["entries"] == 1
        assert tier["total_bytes"] > 0

    def test_metrics_snapshot_embedded(self, fresh_cache, fresh_telemetry):
        _run_one_job()
        document = manifest.build_run_manifest()
        histograms = document["metrics"]["histograms"]
        assert histograms["job_seconds"]["count"] >= 1

    def test_duration_computed_from_start(self, fresh_cache, fresh_telemetry):
        document = manifest.build_run_manifest(started=0.0)
        assert document["duration_seconds"] > 0


class TestWriteLoad:
    def test_round_trip(self, tmp_path, fresh_cache, fresh_telemetry):
        target = manifest.write_run_manifest(
            tmp_path / "run.json", argv=["figure8"], exit_code=0
        )
        loaded = manifest.load_manifest(target)
        assert loaded["argv"] == ["figure8"]
        assert loaded["exit_code"] == 0

    def test_write_creates_parent_directories(
        self, tmp_path, fresh_cache, fresh_telemetry
    ):
        target = manifest.write_run_manifest(tmp_path / "a" / "b" / "run.json")
        assert target.exists()

    def test_load_rejects_non_manifest(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"schema": "something-else"}')
        with pytest.raises(ValueError):
            manifest.load_manifest(bogus)


class TestValidate:
    def test_rejects_non_object(self):
        assert manifest.validate_run_manifest([1]) != []

    def test_reports_missing_keys(self):
        problems = manifest.validate_run_manifest({"schema": manifest.MANIFEST_SCHEMA})
        assert any("missing 'jobs'" in p for p in problems)
        assert any("missing 'metrics'" in p for p in problems)

    def test_reports_wrong_types(self, fresh_cache, fresh_telemetry):
        document = manifest.build_run_manifest()
        document["jobs"] = "nope"
        assert any(
            "'jobs' has the wrong type" in p
            for p in manifest.validate_run_manifest(document)
        )

    def test_reports_bad_metrics_families(self, fresh_cache, fresh_telemetry):
        document = manifest.build_run_manifest()
        document["metrics"] = {"counters": {}}  # gauges/histograms missing
        problems = manifest.validate_run_manifest(document)
        assert any("metrics." in p for p in problems)


class TestRender:
    def test_renders_key_lines(self, fresh_cache, fresh_telemetry):
        _run_one_job()
        document = manifest.build_run_manifest(
            argv=["table3", "--quick"], exit_code=0, started=0.0
        )
        text = manifest.render_manifest(document)
        assert "command:      repro table3 --quick" in text
        assert "exit code:    0" in text
        assert "backend serial:" in text
        assert "job latency:" in text
        assert "executed=1" in text

    def test_renders_trace_pointer_when_present(
        self, fresh_cache, fresh_telemetry
    ):
        document = manifest.build_run_manifest()
        document["trace_out"] = "/tmp/trace.json"
        assert "ui.perfetto.dev" in manifest.render_manifest(document)
