"""Unit tests for the per-interval energy curves (Figures 3/5c analytics)."""

import pytest

from repro.core.breakeven import breakeven_interval
from repro.core.parameters import TechnologyParameters
from repro.core.transition import (
    always_active_interval_energy,
    interval_energy_curves,
    max_sleep_interval_energy,
)


@pytest.fixture
def params():
    return TechnologyParameters(leakage_factor_p=0.05)


class TestIntervalEnergies:
    def test_always_active_linear_through_origin(self, params):
        assert always_active_interval_energy(params, 0.5, 0) == 0.0
        e10 = always_active_interval_energy(params, 0.5, 10)
        e20 = always_active_interval_energy(params, 0.5, 20)
        assert e20 == pytest.approx(2 * e10)

    def test_max_sleep_step_plus_plateau(self, params):
        assert max_sleep_interval_energy(params, 0.5, 0) == 0.0
        e1 = max_sleep_interval_energy(params, 0.5, 1)
        assert e1 > params.transition_energy(0.5) * 0.99
        e100 = max_sleep_interval_energy(params, 0.5, 100)
        assert e100 - e1 == pytest.approx(99 * params.sleep_cycle_energy())

    def test_negative_interval_rejected(self, params):
        with pytest.raises(ValueError):
            always_active_interval_energy(params, 0.5, -1)
        with pytest.raises(ValueError):
            max_sleep_interval_energy(params, 0.5, -1)


class TestCurves:
    def test_crossover_matches_breakeven(self, params):
        curves = interval_energy_curves(params, 0.5, max_interval=100)
        crossover = curves.crossover_interval()
        n_be = breakeven_interval(params, 0.5)
        assert crossover is not None
        assert crossover == pytest.approx(n_be, abs=1.0)

    def test_no_crossover_when_range_too_short(self, params):
        curves = interval_energy_curves(params, 0.5, max_interval=5)
        assert curves.crossover_interval() is None

    def test_default_slices_match_breakeven(self, params):
        curves = interval_energy_curves(params, 0.5)
        assert curves.num_slices == round(breakeven_interval(params, 0.5))

    def test_custom_interval_list(self, params):
        curves = interval_energy_curves(params, 0.5, intervals=[0, 10, 50])
        assert curves.intervals == (0, 10, 50)
        assert len(curves.max_sleep) == 3

    def test_gradual_sandwich_at_extremes(self, params):
        curves = interval_energy_curves(params, 0.5, max_interval=200)
        # Short intervals: GS below MS; long intervals: GS below AA.
        assert curves.gradual_sleep[2] < curves.max_sleep[2]
        assert curves.gradual_sleep[200] < curves.always_active[200]
