"""The evaluation service: schema, coalescing, batching, and the client.

The acceptance bars: serve responses are byte-identical to the direct
CLI; N concurrent identical requests execute each unique simulation
exactly once (the coalescer); a repeat of a completed request answers
entirely from the caches with ``executed=0`` (the warm path).
"""

import asyncio
import io
import contextlib
import threading

import pytest

from repro import cli
from repro.cpu.simulator import clear_simulation_cache
from repro.exec import cache
from repro.obs import metrics as obs_metrics
from repro.serve import client as serve_client
from repro.serve.schema import (
    RequestError,
    build_request,
    payload_from_args,
)
from repro.serve.service import EvaluationService


@pytest.fixture
def fresh_cache(tmp_path, preserve_cache_config):
    """An empty persistent cache and memo; restores the previous config."""
    store = cache.configure(cache_dir=tmp_path / "serve-cache")
    clear_simulation_cache()
    yield store
    clear_simulation_cache()


@pytest.fixture
def serve_url(fresh_cache):
    """A live service on a fresh cache; yields its base URL."""
    service = EvaluationService(port=0, batch_window=0.01)
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    asyncio.run_coroutine_threadsafe(service.start(), loop).result(timeout=30)
    yield f"http://127.0.0.1:{service.port}"
    asyncio.run_coroutine_threadsafe(service.aclose(), loop).result(timeout=30)
    loop.call_soon_threadsafe(loop.stop)
    thread.join(timeout=30)
    loop.close()


def _simulate(benchmark="gzip", instructions=1500, **extra):
    params = {"benchmark": benchmark, "instructions": instructions, **extra}
    return {"kind": "simulate", "params": params}


def _run_cli(argv):
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = cli.main(argv)
    return code, out.getvalue()


class TestSchema:
    def test_unknown_kind_rejected(self):
        with pytest.raises(RequestError, match="unknown kind"):
            build_request({"kind": "mystery"})
        with pytest.raises(RequestError, match="JSON object"):
            build_request(["not", "an", "object"])

    def test_simulate_requires_benchmark_and_instructions(self):
        with pytest.raises(RequestError, match="benchmark"):
            build_request({"kind": "simulate", "params": {"instructions": 100}})
        with pytest.raises(RequestError, match="instructions"):
            build_request({"kind": "simulate", "params": {"benchmark": "gzip"}})

    def test_equivalent_payloads_share_a_key(self):
        csv = build_request(
            {"kind": "sweep", "params": {"policies": "MaxSleep,AlwaysActive"}}
        )
        listed = build_request(
            {"kind": "sweep", "params": {"policies": ["MaxSleep", "AlwaysActive"]}}
        )
        defaulted = build_request({"kind": "sweep", "params": {}})
        assert csv.key == listed.key
        assert csv.key != defaulted.key

    def test_key_distinguishes_scale_and_params(self):
        quick = build_request({"kind": "sweep", "quick": True})
        full = build_request({"kind": "sweep", "quick": False})
        assert quick.key != full.key
        a = build_request(_simulate(seed=1))
        b = build_request(_simulate(seed=2))
        assert a.key != b.key

    def test_grid_specs_normalize_like_the_cli(self):
        from repro.experiments import sweep

        request = build_request(
            {"kind": "sweep", "params": {"p_grid": "0.05,0.5"}}
        )
        assert tuple(request.params["p_values"]) == sweep.parse_grid("0.05,0.5")
        assert tuple(request.params["alphas"]) == sweep.DEFAULT_ALPHA_GRID

    def test_jobs_enumerate_per_kind(self):
        simulate = build_request(_simulate())
        assert len(simulate.jobs()) == 1
        sweep_request = build_request(
            {"kind": "sweep", "quick": True, "params": {"benchmarks": "gzip,mcf"}}
        )
        assert len(sweep_request.jobs()) == 2

    def test_payload_from_args_ships_raw_values(self):
        parser = cli.build_parser()
        args = parser.parse_args(["sweep", "--quick", "--policies", "MaxSleep"])
        payload = payload_from_args("sweep", args)
        from repro.experiments import sweep

        assert payload == {
            "kind": "sweep",
            "quick": True,
            "params": {
                "policies": "MaxSleep",
                "alpha_grid": sweep.DEFAULT_ALPHA_SPEC,
            },
        }
        # Normalization happens server-side, identically to the CLI path.
        assert build_request(payload).params["policies"] == ["MaxSleep"]

    def test_payload_from_args_rejects_unservable(self):
        parser = cli.build_parser()
        args = parser.parse_args(["table1"])
        with pytest.raises(RequestError):
            payload_from_args("table1", args)


class TestServiceLifecycle:
    def test_health_reports_fingerprint(self, serve_url):
        from repro.exec.hashing import CACHE_SCHEMA_VERSION, model_fingerprint

        document = serve_client.health(serve_url)
        assert document["ok"] is True
        assert document["fingerprint"] == model_fingerprint()
        assert document["schema"] == CACHE_SCHEMA_VERSION

    def test_metrics_endpoint_serves_registry_snapshot(self, serve_url):
        serve_client.run_remote(serve_url, _simulate())
        snapshot = serve_client.metrics_snapshot(serve_url)["metrics"]
        assert snapshot["counters"]["serve.requests"] >= 1.0
        assert "serve.request_seconds" in snapshot["histograms"]

    def test_unknown_route_is_404(self, serve_url):
        import http.client
        import urllib.parse

        parsed = urllib.parse.urlsplit(serve_url)
        connection = http.client.HTTPConnection(
            parsed.hostname, parsed.port, timeout=10
        )
        connection.request("GET", "/nope")
        response = connection.getresponse()
        assert response.status == 404
        connection.close()

    def test_malformed_payload_is_400(self, serve_url):
        with pytest.raises(serve_client.ServeClientError, match="unknown kind"):
            serve_client.run_remote(serve_url, {"kind": "mystery"})

    def test_unreachable_server_raises(self):
        with pytest.raises(serve_client.ServeClientError, match="cannot reach"):
            serve_client.health("http://127.0.0.1:9", timeout=2.0)


class TestExecutionSemantics:
    def test_cold_then_warm(self, serve_url):
        events = []
        first = serve_client.run_remote(
            serve_url, _simulate(), on_event=events.append
        )
        assert first["executed"] == 1
        assert first["warm"] is False
        assert [e["event"] for e in events] == ["accepted", "scheduled", "result"]
        second = serve_client.run_remote(serve_url, _simulate())
        assert second["executed"] == 0
        assert second["warm"] is True
        assert second["text"] == first["text"]

    def test_simulate_text_is_deterministic(self, serve_url):
        result = serve_client.run_remote(serve_url, _simulate(warmup=500))
        assert result["text"].startswith("simulate gzip: instructions=1500 ")
        assert "ipc=" in result["text"]

    def test_concurrent_duplicates_execute_unique_jobs_once(self, serve_url):
        """The coalescing acceptance bar: N identical concurrent
        requests -> one execution, sum(executed) == unique jobs."""
        payload = _simulate("mcf", instructions=60_000, warmup=0)
        results = [None] * 8

        def hit(i):
            results[i] = serve_client.run_remote(serve_url, payload)

        threads = [threading.Thread(target=hit, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert all(result is not None for result in results)
        assert sum(result["executed"] for result in results) == 1
        assert len({result["text"] for result in results}) == 1
        # At least one request rode the coalescer or the warm path.
        assert any(
            result.get("coalesced") or result["warm"] for result in results
        )

    def test_batch_window_folds_distinct_requests(self, fresh_cache):
        """Two different requests landing inside one batching window are
        submitted to the engine as a single folded batch."""
        service = EvaluationService(port=0, batch_window=0.5)
        loop = asyncio.new_event_loop()
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()
        asyncio.run_coroutine_threadsafe(service.start(), loop).result(timeout=30)
        url = f"http://127.0.0.1:{service.port}"
        try:
            payloads = [_simulate("gzip", seed=3), _simulate("mst", seed=4)]
            results = [None, None]

            def hit(i):
                results[i] = serve_client.run_remote(url, payloads[i])

            threads = [threading.Thread(target=hit, args=(i,)) for i in (0, 1)]
            for worker in threads:
                worker.start()
            for worker in threads:
                worker.join(timeout=120)
            assert all(result is not None for result in results)
            # Both saw the same folded submission of 2 unique jobs.
            assert {result["report"]["unique"] for result in results} == {2}
            assert sum(result["executed"] for result in results) == 2
        finally:
            asyncio.run_coroutine_threadsafe(service.aclose(), loop).result(
                timeout=30
            )
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=30)
            loop.close()

    def test_serve_metrics_accrue(self, serve_url):
        before = obs_metrics.registry().snapshot()
        serve_client.run_remote(serve_url, _simulate(seed=9))
        serve_client.run_remote(serve_url, _simulate(seed=9))
        delta = obs_metrics.registry().delta_since(before)
        assert delta["counters"]["serve.requests"] == 2.0
        assert delta["counters"]["serve.warm_hits"] == 1.0
        assert delta["histograms"]["serve.request_seconds"]["count"] == 2


class TestThinClientCli:
    def test_sweep_output_byte_identical(self, serve_url, tmp_path):
        cache_dir = str(tmp_path / "cli-cache")
        code_remote, remote = _run_cli(
            ["sweep", "--quick", "--server", serve_url, "--cache-dir", cache_dir]
        )
        code_local, local = _run_cli(
            ["sweep", "--quick", "--cache-dir", cache_dir]
        )
        assert code_remote == code_local == 0
        assert remote == local

    def test_server_flag_limited_to_servable_subcommands(self):
        with pytest.raises(SystemExit):
            cli.main(["table1", "--server", "http://localhost:1"])

    def test_server_flag_rejects_catalog(self):
        with pytest.raises(SystemExit):
            cli.main(
                [
                    "robustness",
                    "--server",
                    "http://localhost:1",
                    "--catalog",
                    "out.json",
                ]
            )

    def test_unreachable_server_fails_cleanly(self, capsys):
        code = _run_cli(["sweep", "--quick", "--server", "http://127.0.0.1:9"])[0]
        assert code == 2
        assert "cannot reach" in capsys.readouterr().err
