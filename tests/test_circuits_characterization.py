"""Unit tests for the characterization bridge (circuits -> energy model)."""

import pytest

from repro.circuits.characterization import (
    DerivedModelParameters,
    characterize_or8_styles,
    derive_model_parameters,
)
from repro.circuits.gates import DominoStyle, build_or8
from repro.circuits.library import calibrated_device_parameters


class TestCharacterizeStyles:
    def test_covers_all_styles(self):
        chars = characterize_or8_styles()
        assert set(chars) == set(DominoStyle)

    def test_dual_vt_styles_share_dynamic_energy(self):
        chars = characterize_or8_styles()
        assert chars[DominoStyle.DUAL_VT].dynamic_energy_fj == pytest.approx(
            chars[DominoStyle.DUAL_VT_SLEEP].dynamic_energy_fj
        )


class TestDerivedModelParameters:
    def test_paper_section3_values(self):
        derived = derive_model_parameters()
        # The paper: p ~ 1.4/22.2 = 0.063, k ~ 5e-4, e_ovh = 0.14/22.2 ~ 0.006.
        assert derived.leakage_factor_p == pytest.approx(0.063, abs=0.002)
        assert derived.sleep_ratio_k == pytest.approx(5.07e-4, rel=0.05)
        assert derived.sleep_overhead_ratio == pytest.approx(0.0063, abs=0.0005)
        assert derived.dynamic_energy_fj == pytest.approx(22.2, rel=0.01)

    def test_paper_model_values_are_pessimistic(self):
        """Table 4's k=0.001 and e_ovh=0.01 must exceed the derived values."""
        derived = derive_model_parameters()
        assert 0.001 > derived.sleep_ratio_k
        assert 0.01 > derived.sleep_overhead_ratio

    def test_requires_sleep_capable_gate(self):
        params = calibrated_device_parameters()
        with pytest.raises(ValueError):
            derive_model_parameters(params, build_or8(DominoStyle.DUAL_VT))

    def test_validation(self):
        with pytest.raises(ValueError):
            DerivedModelParameters(
                leakage_factor_p=0.0,
                sleep_ratio_k=0.001,
                sleep_overhead_ratio=0.01,
                dynamic_energy_fj=22.2,
            )
        with pytest.raises(ValueError):
            DerivedModelParameters(
                leakage_factor_p=0.05,
                sleep_ratio_k=1.0,
                sleep_overhead_ratio=0.01,
                dynamic_energy_fj=22.2,
            )
