"""Tests for the policy-sweep engine and its CLI surface."""

import pytest

from repro.experiments import figure8, sweep
from repro.experiments.common import QUICK_SCALE, collect_benchmark_data
from repro.experiments.sweep import (
    DEFAULT_POLICIES,
    POLICY_FACTORIES,
    SweepGrid,
    evaluate_grid,
    parse_grid,
    sweep_jobs,
)

SUBSET = ("gzip", "mcf")


@pytest.fixture(scope="module")
def subset_data():
    return collect_benchmark_data(scale=QUICK_SCALE, benchmarks=SUBSET)


class TestParseGrid:
    def test_linspace(self):
        assert parse_grid("0.1:0.5:3") == (0.1, 0.3, 0.5)
        assert parse_grid("0:1:5") == (0.0, 0.25, 0.5, 0.75, 1.0)

    def test_single_point_linspace(self):
        assert parse_grid("0.4:0.9:1") == (0.4,)

    def test_comma_list(self):
        assert parse_grid("0.05,0.5") == (0.05, 0.5)
        assert parse_grid(" 0.25 , 0.75 ") == (0.25, 0.75)

    def test_endpoints_exact(self):
        values = parse_grid("0.05:0.5:10")
        assert values[0] == 0.05 and values[-1] == 0.5
        assert len(values) == 10

    @pytest.mark.parametrize("spec", ["", "1:2", "1:2:3:4", "0.1:0.5:0", "a,b"])
    def test_rejects_malformed(self, spec):
        with pytest.raises(ValueError):
            parse_grid(spec)


class TestSweepGrid:
    def test_num_cells(self):
        grid = SweepGrid(p_values=(0.05, 0.5), alphas=(0.25, 0.5, 0.75))
        assert grid.num_cells == 2 * 3 * len(DEFAULT_POLICIES)

    def test_technology_carries_fixed_constants(self):
        grid = SweepGrid(
            p_values=(0.1,), alphas=(0.5,), sleep_overhead=0.02, duty_cycle=0.6
        )
        params = grid.technology(0.1)
        assert params.leakage_factor_p == 0.1
        assert params.sleep_overhead == 0.02
        assert params.duty_cycle == 0.6

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown policies"):
            SweepGrid(p_values=(0.1,), alphas=(0.5,), policies=("Nonsense",))

    def test_rejects_duplicates_and_empty(self):
        with pytest.raises(ValueError):
            SweepGrid(
                p_values=(0.1,), alphas=(0.5,),
                policies=("MaxSleep", "MaxSleep"),
            )
        with pytest.raises(ValueError):
            SweepGrid(p_values=(), alphas=(0.5,))
        with pytest.raises(ValueError):
            SweepGrid(p_values=(0.1,), alphas=())

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            SweepGrid(p_values=(0.1,), alphas=(1.5,))

    def test_every_factory_constructs(self):
        grid = SweepGrid(p_values=(0.3,), alphas=(0.5,))
        params = grid.technology(0.3)
        for name, factory in POLICY_FACTORIES.items():
            policy = factory(params, 0.5)
            assert policy.stateless, name

    def test_timeout_factory_handles_never_pays(self):
        """alpha = 1 with positive overhead: sleeping never pays; the
        break-even interval is infinite and must clamp, not crash."""
        grid = SweepGrid(p_values=(0.5,), alphas=(1.0,), policies=("TimeoutSleep",))
        policy = POLICY_FACTORIES["TimeoutSleep"](grid.technology(0.5), 1.0)
        assert policy.timeout >= 10**6


class TestEvaluateGrid:
    @pytest.fixture(scope="class")
    def grid(self):
        return SweepGrid(
            p_values=(0.05, 0.275, 0.5),
            alphas=(0.25, 0.5, 0.75),
            policies=tuple(sorted(POLICY_FACTORIES)),
        )

    def test_scalar_and_vectorized_identical(self, subset_data, grid):
        """Grid evaluation is float-for-float engine-independent."""
        scalar = evaluate_grid(subset_data, grid, vectorized=False)
        vector = evaluate_grid(subset_data, grid, vectorized=True)
        assert scalar.cells.keys() == vector.cells.keys()
        for key, cell in scalar.cells.items():
            other = vector.cells[key]
            assert cell.total_energy == other.total_energy
            assert cell.baseline_energy == other.baseline_energy
            assert cell.normalized_energy == other.normalized_energy
            assert cell.leakage_fraction == other.leakage_fraction

    def test_covers_full_cross_product(self, subset_data, grid):
        result = evaluate_grid(subset_data, grid)
        assert len(result.cells) == grid.num_cells * len(SUBSET)
        for p in grid.p_values:
            for alpha in grid.alphas:
                for bench in SUBSET:
                    for policy in grid.policies:
                        cell = result.cell(p, alpha, bench, policy)
                        assert cell.normalized_energy > 0

    def test_no_overhead_is_lower_bound(self, subset_data, grid):
        """NoOverhead is MaxSleep minus transition costs: a true lower
        bound among the sleep-everything policies at every cell."""
        result = evaluate_grid(subset_data, grid)
        for p in grid.p_values:
            for alpha in grid.alphas:
                for bench in SUBSET:
                    no = result.cell(p, alpha, bench, "NoOverhead")
                    ms = result.cell(p, alpha, bench, "MaxSleep")
                    assert no.total_energy <= ms.total_energy

    def test_oracle_never_worse_than_boundary_policies(self, subset_data, grid):
        """BreakevenOracle picks the per-interval optimum of the two
        realizable boundary policies."""
        result = evaluate_grid(subset_data, grid)
        tolerance = 1e-9
        for p in grid.p_values:
            for alpha in grid.alphas:
                for bench in SUBSET:
                    oracle = result.cell(p, alpha, bench, "BreakevenOracle")
                    for rival in ("MaxSleep", "AlwaysActive"):
                        rival_cell = result.cell(p, alpha, bench, rival)
                        assert (
                            oracle.total_energy
                            <= rival_cell.total_energy + tolerance
                        )

    def test_suite_mean_and_best_policy(self, subset_data, grid):
        result = evaluate_grid(subset_data, grid)
        mean = result.suite_mean(0.5, 0.5, "MaxSleep")
        values = [
            result.cell(0.5, 0.5, bench, "MaxSleep").normalized_energy
            for bench in SUBSET
        ]
        assert mean == pytest.approx(sum(values) / len(values))
        assert result.best_policy(0.5, 0.5) in grid.policies

    def test_matches_figure8_view(self, subset_data):
        """Figure 8 is a thin view over the same engine: its energies must
        equal the sweep cells exactly."""
        fig = figure8.run(scale=QUICK_SCALE, benchmarks=SUBSET)
        grid = SweepGrid(
            p_values=figure8.P_VALUES,
            alphas=(0.25, 0.5, 0.75),
        )
        swept = evaluate_grid(subset_data, grid)
        for p in figure8.P_VALUES:
            for alpha in (0.25, 0.5, 0.75):
                for bench in SUBSET:
                    for policy in grid.policies:
                        assert fig.energies[p][alpha][bench][policy] == swept.cell(
                            p, alpha, bench, policy
                        ).normalized_energy


class TestRunAndRender:
    def test_run_and_render_smoke(self):
        grid = SweepGrid(p_values=(0.05, 0.5), alphas=(0.5,))
        result = sweep.run(scale=QUICK_SCALE, grid=grid, benchmarks=SUBSET)
        text = sweep.render(result)
        assert "Policy sweep: " in text
        for policy in grid.policies:
            assert policy in text
        assert "Lowest-energy policy per grid cell" in text

    def test_sweep_jobs_match_benchmark_batch(self):
        jobs = sweep_jobs(scale=QUICK_SCALE, benchmarks=SUBSET)
        assert [job.profile.name for job in jobs] == list(SUBSET)


class TestSweepCli:
    def test_cli_sweep_runs(self, capsys, preserve_cache_config):
        from repro.cli import main

        code = main([
            "sweep", "--quick",
            "--p-grid", "0.05,0.5",
            "--alpha-grid", "0.5:0.5:1",
            "--policies", "MaxSleep,NoOverhead",
            "--benchmarks", "gzip",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "MaxSleep" in out and "NoOverhead" in out
        assert "1 alpha" in out

    def test_cli_lists_sweep(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        assert "sweep" in capsys.readouterr().out.split()
