"""Tests for the pluggable execution backends and the worker protocol.

The keystone contract: identical job batches produce byte-identical
ordered results across SerialBackend, ProcessPoolBackend, and
SSHBackend(localhost) — which is what licenses ``--backend`` being a
pure deployment knob (and the CI backend-equivalence gate).
"""

import io
import pickle
import queue
import threading

import pytest

from repro.cpu.simulator import clear_simulation_cache
from repro.cpu.workloads import get_benchmark
from repro.exec import cache
from repro.exec import worker as worker_mod
from repro.exec.backends import (
    BackendError,
    ProcessPoolBackend,
    RemoteJobError,
    SerialBackend,
    SSHBackend,
    parse_backend_spec,
    resolve_backend,
    set_default_backend,
    validate_ready,
)
from repro.exec.engine import BatchReport, reset_telemetry, run_jobs, telemetry, telemetry_lines
from repro.exec.hashing import CACHE_SCHEMA_VERSION, model_fingerprint
from repro.exec.jobs import SimulationJob
from repro.exec.worker import (
    ProtocolError,
    decode_payload,
    encode_payload,
    read_frame,
    serve,
    write_frame,
)


@pytest.fixture
def fresh_cache(tmp_path, preserve_cache_config):
    """An empty persistent cache and memo; restores the previous config."""
    store = cache.configure(cache_dir=tmp_path / "exec-cache")
    clear_simulation_cache()
    yield store
    clear_simulation_cache()


@pytest.fixture
def restore_backend_default():
    yield
    set_default_backend(None)


def _job(name="gzip", instructions=1200, warmup=300, seed=1, **kwargs):
    return SimulationJob(
        profile=get_benchmark(name),
        num_instructions=instructions,
        warmup_instructions=warmup,
        seed=seed,
        **kwargs,
    )


def _jobs():
    return [_job(name) for name in ("gzip", "mcf", "mst")]


class TestWireProtocol:
    def test_frame_roundtrip(self):
        buffer = io.BytesIO()
        write_frame(buffer, {"kind": "job", "id": 3})
        write_frame(buffer, {"kind": "shutdown"})
        buffer.seek(0)
        assert read_frame(buffer) == {"kind": "job", "id": 3}
        assert read_frame(buffer) == {"kind": "shutdown"}
        assert read_frame(buffer) is None

    def test_payload_roundtrip(self):
        job = _job()
        assert decode_payload(encode_payload(job)) == job

    def test_torn_length_prefix_raises(self):
        buffer = io.BytesIO(b"\x00\x00")
        with pytest.raises(ProtocolError):
            read_frame(buffer)

    def test_torn_body_raises(self):
        buffer = io.BytesIO()
        write_frame(buffer, {"kind": "job", "id": 1})
        data = buffer.getvalue()
        with pytest.raises(ProtocolError):
            read_frame(io.BytesIO(data[:-3]))

    def test_non_json_body_raises(self):
        buffer = io.BytesIO(b"\x00\x00\x00\x04\xff\xfe\xfd\xfc")
        with pytest.raises(ProtocolError):
            read_frame(buffer)

    def test_non_object_body_raises(self):
        buffer = io.BytesIO(b"\x00\x00\x00\x02[]")
        with pytest.raises(ProtocolError):
            read_frame(buffer)

    def test_oversized_length_rejected(self):
        buffer = io.BytesIO(b"\xff\xff\xff\xff")
        with pytest.raises(ProtocolError):
            read_frame(buffer)


def _drive_worker(*frames):
    """Feed ``frames`` to an in-process worker; return its response frames."""
    inp = io.BytesIO()
    for frame in frames:
        write_frame(inp, frame)
    inp.seek(0)
    out = io.BytesIO()
    code = serve(stdin=inp, stdout=out)
    out.seek(0)
    responses = []
    while True:
        frame = read_frame(out)
        if frame is None:
            return code, responses
        responses.append(frame)


class TestWorkerServe:
    def test_handshake_then_job_then_bye(self):
        job = _job(instructions=600, warmup=100)
        code, frames = _drive_worker(
            {"kind": "job", "id": 7, "job": encode_payload(job)},
            {"kind": "shutdown"},
        )
        assert code == 0
        ready, result, bye = frames
        assert ready["kind"] == "ready"
        assert ready["fingerprint"] == model_fingerprint()
        assert ready["schema"] == CACHE_SCHEMA_VERSION
        assert result["kind"] == "result" and result["id"] == 7
        assert pickle.dumps(decode_payload(result["result"])) == pickle.dumps(job.run())
        assert bye == {"kind": "bye", "executed": 1}

    def test_failing_job_yields_error_frame_and_worker_survives(self):
        bad = _job(instructions=200, warmup=0, kernel="bogus")
        good = _job(instructions=600, warmup=100)
        code, frames = _drive_worker(
            {"kind": "job", "id": 0, "job": encode_payload(bad)},
            {"kind": "job", "id": 1, "job": encode_payload(good)},
            {"kind": "shutdown"},
        )
        assert code == 0
        _, error, result, bye = frames
        assert error["kind"] == "error" and error["id"] == 0
        assert "bogus" in error["error"]
        assert "Traceback" in error["traceback"]
        assert result["kind"] == "result" and result["id"] == 1
        assert bye["executed"] == 1

    def test_unknown_frame_kind_yields_error_frame(self):
        code, frames = _drive_worker({"kind": "mystery"}, {"kind": "shutdown"})
        assert code == 0
        _, error, bye = frames
        assert error["kind"] == "error" and error["id"] is None
        assert "mystery" in error["error"]
        assert bye["executed"] == 0

    def test_engine_vanishing_exits_cleanly(self):
        code, frames = _drive_worker()  # EOF right after the handshake
        assert code == 0
        assert [frame["kind"] for frame in frames] == ["ready"]


class TestValidateReady:
    def test_matching_handshake_passes(self):
        validate_ready(worker_mod.ready_frame(), "hostA")

    def test_missing_or_wrong_kind_rejected(self):
        with pytest.raises(BackendError, match="no ready frame"):
            validate_ready(None, "hostA")
        with pytest.raises(BackendError, match="no ready frame"):
            validate_ready({"kind": "result"}, "hostA")

    def test_schema_skew_rejected(self):
        frame = dict(worker_mod.ready_frame(), schema=CACHE_SCHEMA_VERSION + 1)
        with pytest.raises(BackendError, match="cache schema"):
            validate_ready(frame, "hostA")

    def test_model_skew_rejected(self):
        frame = dict(worker_mod.ready_frame(), fingerprint="stale-checkout")
        with pytest.raises(BackendError, match="different model"):
            validate_ready(frame, "hostA")


class TestBackendSpecs:
    def test_parse_known_specs(self):
        assert isinstance(parse_backend_spec("serial"), SerialBackend)
        pool = parse_backend_spec("pool")
        assert isinstance(pool, ProcessPoolBackend) and pool.workers is None
        assert parse_backend_spec("pool:4").workers == 4
        ssh = parse_backend_spec("ssh:alpha, beta")
        assert isinstance(ssh, SSHBackend) and ssh.hosts == ("alpha", "beta")

    def test_malformed_specs_rejected(self):
        for spec in ("", "bogus", "pool:x", "pool:-1", "ssh:", "serial:2"):
            with pytest.raises(ValueError):
                parse_backend_spec(spec)

    def test_resolve_default_is_pool(self):
        assert isinstance(resolve_backend(None), ProcessPoolBackend)

    def test_resolve_env_default(self, monkeypatch, restore_backend_default):
        monkeypatch.setenv("REPRO_BACKEND", "serial")
        assert isinstance(resolve_backend(None), SerialBackend)

    def test_set_default_backend_wins_over_env(self, monkeypatch, restore_backend_default):
        monkeypatch.setenv("REPRO_BACKEND", "serial")
        set_default_backend("ssh:somewhere")
        assert isinstance(resolve_backend(None), SSHBackend)

    def test_set_default_backend_validates_eagerly(self, restore_backend_default):
        with pytest.raises(ValueError):
            set_default_backend("nope")

    def test_workers_param_overrides_pool(self):
        assert resolve_backend("pool", workers=6).workers == 6
        assert resolve_backend("pool:2", workers=6).workers == 6

    def test_workers_param_ignored_by_other_backends(self):
        assert isinstance(resolve_backend("serial", workers=6), SerialBackend)
        ssh = resolve_backend("ssh:h1", workers=6)
        assert isinstance(ssh, SSHBackend)

    def test_backend_instances_pass_through(self):
        backend = SerialBackend()
        assert resolve_backend(backend) is backend

    def test_ssh_needs_hosts(self):
        with pytest.raises(ValueError):
            SSHBackend(())


class TestWorkersFor:
    def test_serial_always_one(self):
        assert SerialBackend().workers_for(10) == 1

    def test_pool_caps_at_pending(self):
        assert ProcessPoolBackend(workers=8).workers_for(3) == 3
        assert ProcessPoolBackend(workers=1).workers_for(3) == 1

    def test_ssh_caps_at_hosts(self):
        backend = SSHBackend(("a", "b", "c"))
        assert backend.workers_for(2) == 2
        assert backend.workers_for(9) == 3


class TestBackendEquivalence:
    """The keystone: every backend produces byte-identical results."""

    def test_serial_pool_ssh_localhost_identical(self, fresh_cache):
        jobs = _jobs()
        serial = run_jobs(jobs, backend="serial", use_cache=False)
        pool = run_jobs(jobs, backend="pool:2", use_cache=False)
        ssh = run_jobs(jobs, backend="ssh:localhost", use_cache=False)
        assert [r.workload_name for r in serial] == ["gzip", "mcf", "mst"]
        for ser, par, remote in zip(serial, pool, ssh):
            assert pickle.dumps(ser) == pickle.dumps(par) == pickle.dumps(remote)

    def test_multi_host_loopback_sharding(self, fresh_cache):
        jobs = _jobs()
        serial = run_jobs(jobs, backend="serial", use_cache=False)
        sharded = run_jobs(jobs, backend="ssh:localhost,localhost", use_cache=False)
        for ser, remote in zip(serial, sharded):
            assert pickle.dumps(ser) == pickle.dumps(remote)

    def test_ssh_results_land_in_the_cache(self, fresh_cache):
        job = _job()
        run_jobs([job], backend="ssh:localhost")
        report = BatchReport()
        run_jobs([job], backend="serial", report=report)
        assert report.cache_hits == 1 and report.executed == 0


class TestFailurePropagation:
    def test_serial_raises_the_original_exception(self, fresh_cache):
        with pytest.raises(ValueError, match="bogus"):
            run_jobs([_job(kernel="bogus")], backend="serial", use_cache=False)

    def test_ssh_raises_remote_job_error_with_traceback(self, fresh_cache):
        with pytest.raises(RemoteJobError, match="bogus") as excinfo:
            run_jobs([_job(kernel="bogus")], backend="ssh:localhost", use_cache=False)
        assert excinfo.value.host == "localhost"
        assert "Traceback" in excinfo.value.remote_traceback

    def test_failed_batch_counts_in_telemetry(self, fresh_cache):
        reset_telemetry()
        with pytest.raises(ValueError):
            run_jobs([_job(kernel="bogus")], backend="serial", use_cache=False)
        tally = telemetry()["serial"]
        assert tally.failed == 1
        assert tally.executed == 0

    def test_unreachable_worker_command_raises_backend_error(self, fresh_cache):
        backend = SSHBackend(("localhost",))
        backend._spawn = lambda host: (_ for _ in ()).throw(OSError("no such binary"))
        with pytest.raises(OSError, match="no such binary"):
            run_jobs([_job()], backend=backend, use_cache=False)


class TestShardAbortAndReaping:
    """A failed or abandoned SSH batch must stop work and reap workers."""

    def test_preset_abort_feeds_no_jobs(self):
        """Deterministic core of the early-stop fix: a shard whose abort
        event is already set hands its worker zero jobs and shuts it
        down cleanly -- no result, no error, just done."""
        backend = SSHBackend(("localhost",))
        out_queue: "queue.Queue" = queue.Queue()
        abort = threading.Event()
        abort.set()
        procs = {}
        backend._serve_shard(
            "localhost", [(0, _job().with_stamped_defaults())], out_queue, abort, procs
        )
        kinds = []
        while not out_queue.empty():
            kinds.append(out_queue.get()[0])
        assert kinds == ["done"]
        # The worker was spawned, registered, and has already exited.
        assert procs["localhost"].poll() is not None

    def test_two_host_batch_stops_early_on_first_failure(
        self, fresh_cache, monkeypatch
    ):
        """Regression for the shard-failure hang: when one host's job
        fails instantly, the healthy host must not burn through its
        whole shard before the batch raises."""
        from repro.exec import backends as backends_mod

        sent = []
        real_write = backends_mod.write_frame

        def counting_write(stream, frame):
            if frame.get("kind") == "job":
                sent.append(frame["id"])
            real_write(stream, frame)

        monkeypatch.setattr(backends_mod, "write_frame", counting_write)
        # Index 0 (first host's shard) fails at kernel resolution --
        # effectively instantly; the odd indices (second host's shard)
        # are slow enough that the abort lands before the shard drains.
        jobs = [_job(kernel="bogus")] + [
            _job(instructions=40_000, warmup=0, seed=seed) for seed in range(1, 9)
        ]
        with pytest.raises(RemoteJobError, match="bogus"):
            run_jobs(jobs, backend="ssh:localhost,localhost", use_cache=False)
        assert 0 in sent
        assert len(sent) < len(jobs)

    def test_abandoned_batch_reaps_worker_processes(self, fresh_cache):
        """Regression for the worker leak: a consumer that stops
        iterating mid-batch must leave no live worker subprocesses."""
        backend = SSHBackend(("localhost", "localhost"))
        spawned = []
        real_spawn = backend._spawn

        def tracking_spawn(host):
            proc = real_spawn(host)
            spawned.append(proc)
            return proc

        backend._spawn = tracking_spawn
        jobs = [
            _job(instructions=1_000, warmup=0, seed=seed).with_stamped_defaults()
            for seed in range(6)
        ]
        generator = backend.submit_batch(jobs)
        next(generator)  # take one result, then walk away
        generator.close()
        assert spawned
        assert all(proc.poll() is not None for proc in spawned)


class TestTelemetry:
    def test_warm_and_executed_batches_tally_separately(self, fresh_cache):
        reset_telemetry()
        jobs = _jobs()
        run_jobs(jobs, backend="serial")
        run_jobs(jobs, backend="serial")
        tallies = telemetry()
        assert tallies["serial"].executed == 3
        assert tallies["serial"].cache_misses == 3
        assert tallies["(warm)"].cache_hits == 3
        assert tallies["(warm)"].executed == 0

    def test_lines_are_grep_friendly(self, fresh_cache):
        reset_telemetry()
        run_jobs([_job()], backend="serial")
        lines = telemetry_lines()
        assert any("backend serial:" in line and "executed=1" in line for line in lines)

    def test_report_mirrors_the_batch(self, fresh_cache):
        report = BatchReport()
        run_jobs(_jobs() + [_job()], backend="serial", report=report)
        assert report.submitted == 4
        assert report.unique == 3
        assert report.cache_misses == 3
        assert report.executed == 3
        assert report.failed == 0
        assert report.backend == "serial"
        warm = BatchReport()
        run_jobs([_job()], backend="serial", report=warm)
        assert warm.backend == ""  # no backend consulted
        assert warm.cache_hits == 1


class TestWorkerStamping:
    def test_ssh_jobs_carry_the_kernel_default(self, fresh_cache, monkeypatch):
        """Jobs left on the default kernel must ship the resolved value
        to remote workers (their processes don't share our state)."""
        from repro.cpu import kernel as kernel_mod

        monkeypatch.setattr(kernel_mod, "get_default_kernel", lambda: "walk")
        stamped = _job().with_stamped_defaults()
        assert stamped.kernel == "walk"
        # And the stamp does not change the cache identity.
        assert stamped.cache_key() == _job().cache_key()


class TestProtocolNegotiation:
    """Wire protocol v2: the hello/metrics relay and version skew."""

    def test_ready_frame_advertises_proto(self):
        assert worker_mod.ready_frame()["proto"] == worker_mod.PROTOCOL_VERSION

    def test_env_pins_legacy_proto(self, monkeypatch):
        monkeypatch.setenv(worker_mod.ENV_WORKER_PROTO, "1")
        assert "proto" not in worker_mod.ready_frame()
        assert worker_mod.protocol_version() == 1

    def test_env_garbage_ignored(self, monkeypatch):
        monkeypatch.setenv(worker_mod.ENV_WORKER_PROTO, "banana")
        assert worker_mod.protocol_version() == worker_mod.PROTOCOL_VERSION

    def test_validate_ready_returns_advertised_proto(self):
        frame = worker_mod.ready_frame()
        assert validate_ready(frame, "h") == worker_mod.PROTOCOL_VERSION
        del frame["proto"]
        assert validate_ready(frame, "h") == 1
        frame["proto"] = "weird"
        assert validate_ready(frame, "h") == 1

    def test_hello_negotiates_metrics_frames(self):
        from repro.obs import tracer

        job = _job(instructions=600, warmup=100)
        try:
            code, frames = _drive_worker(
                {"kind": "hello", "proto": 2, "metrics": True, "trace": True},
                {"kind": "job", "id": 4, "job": encode_payload(job)},
                {"kind": "shutdown"},
            )
        finally:
            # serve() enabled tracing in-process per the hello.
            tracer.configure(None)
            tracer.reset()
        assert code == 0
        kinds = [f["kind"] for f in frames]
        assert kinds == ["ready", "result", "metrics", "bye"]
        relay = frames[2]
        assert relay["id"] == 4
        # The delta carries the worker's per-job latency histogram and
        # stage counters -- the payload that closes the SSH telemetry gap.
        assert relay["metrics"]["histograms"]["job_seconds"]["count"] == 1
        assert any(
            name.startswith("stage_seconds.")
            for name in relay["metrics"]["counters"]
        )
        assert any(s.get("name") == "worker.job" for s in relay["spans"])

    def test_hello_without_trace_relays_no_spans(self):
        job = _job(instructions=600, warmup=100)
        code, frames = _drive_worker(
            {"kind": "hello", "proto": 2, "metrics": True, "trace": False},
            {"kind": "job", "id": 0, "job": encode_payload(job)},
            {"kind": "shutdown"},
        )
        relay = [f for f in frames if f["kind"] == "metrics"][0]
        assert relay["spans"] == []

    def test_no_hello_means_no_metrics_frames(self):
        job = _job(instructions=600, warmup=100)
        code, frames = _drive_worker(
            {"kind": "job", "id": 0, "job": encode_payload(job)},
            {"kind": "shutdown"},
        )
        assert [f["kind"] for f in frames] == ["ready", "result", "bye"]

    def test_legacy_worker_treats_hello_as_unknown_frame(self, monkeypatch):
        monkeypatch.setenv(worker_mod.ENV_WORKER_PROTO, "1")
        code, frames = _drive_worker(
            {"kind": "hello", "proto": 2, "metrics": True},
            {"kind": "shutdown"},
        )
        # Exactly why the engine never sends hello to a v1 worker: the
        # reply would be an error frame in place of a result.
        assert [f["kind"] for f in frames] == ["ready", "error", "bye"]

    def test_legacy_worker_batch_degrades_gracefully(
        self, fresh_cache, monkeypatch
    ):
        """Version skew end-to-end: an old-proto worker still executes
        the batch correctly; the coordinator just gets no telemetry."""
        from repro.util import stagetime

        monkeypatch.setenv(worker_mod.ENV_WORKER_PROTO, "1")
        reset_telemetry()
        stagetime.reset()
        report = BatchReport()
        results = run_jobs(
            _jobs(), backend="ssh:localhost", use_cache=False, report=report
        )
        assert [r.workload_name for r in results] == ["gzip", "mcf", "mst"]
        assert report.executed == 3
        assert report.stage_seconds == {}  # nothing relayed
        assert report.latency_quantiles == {}


class TestObservabilityRelay:
    """v2 workers relay stage seconds, latency, and spans end-to-end."""

    def test_ssh_stage_report_matches_serial_shape(self, fresh_cache):
        """The closed SSH telemetry gap: --verbose stage seconds after an
        ssh:localhost run have the same shape as after a serial run."""
        from repro.util import stagetime

        reset_telemetry()
        stagetime.reset()
        serial_report = BatchReport()
        run_jobs(_jobs(), backend="serial", use_cache=False, report=serial_report)
        serial_stages = set(serial_report.stage_seconds)
        assert serial_stages  # serial measures inline

        ssh_report = BatchReport()
        run_jobs(_jobs(), backend="ssh:localhost", use_cache=False, report=ssh_report)
        assert set(ssh_report.stage_seconds) == serial_stages
        assert all(v > 0 for v in ssh_report.stage_seconds.values())
        # And the --verbose lines render both the same way.
        lines = telemetry_lines()
        assert any(line.startswith("[repro] stages serial:") for line in lines)
        assert any(line.startswith("[repro] stages ssh:") for line in lines)

    def test_ssh_batch_reports_latency_quantiles(self, fresh_cache):
        report = BatchReport()
        run_jobs(_jobs(), backend="ssh:localhost", use_cache=False, report=report)
        assert set(report.latency_quantiles) == {"p50", "p90", "p99"}
        assert 0 < report.latency_quantiles["p50"] <= report.latency_quantiles["p99"]

    def test_serial_batch_reports_latency_quantiles(self, fresh_cache):
        report = BatchReport()
        run_jobs(_jobs(), backend="serial", use_cache=False, report=report)
        assert report.latency_quantiles["p50"] > 0

    def test_pool_workers_relay_metrics(self, fresh_cache):
        from repro.util import stagetime

        stagetime.reset()
        report = BatchReport()
        run_jobs(_jobs(), backend="pool:2", use_cache=False, report=report)
        assert report.stage_seconds  # relayed from pool workers
        assert report.latency_quantiles["p50"] > 0

    def test_warm_batch_has_no_latency(self, fresh_cache):
        run_jobs([_job()], backend="serial")
        report = BatchReport()
        run_jobs([_job()], backend="serial", report=report)
        assert report.cache_hits == 1
        assert report.latency_quantiles == {}

    def test_ssh_relays_worker_spans_when_tracing(self, fresh_cache):
        import os

        from repro.obs import tracer

        tracer.reset()
        tracer.enable(True)
        try:
            run_jobs(_jobs(), backend="ssh:localhost", use_cache=False)
            events = tracer.events()
        finally:
            tracer.configure(None)
            tracer.reset()
        worker_spans = [e for e in events if e["name"] == "worker.job"]
        assert len(worker_spans) == 3
        # The spans really came from the worker process.
        assert all(e["pid"] != os.getpid() for e in worker_spans)
        # Coordinator-side spans share the same merged buffer.
        assert any(e["name"] == "engine.run_jobs" for e in events)
        assert any(e["name"] == "backend.submit" for e in events)

    def test_no_span_collection_when_disabled(self, fresh_cache):
        from repro.obs import tracer

        tracer.reset()
        run_jobs(_jobs(), backend="ssh:localhost", use_cache=False)
        assert tracer.events() == []
