"""Differential harness: streaming vs materialized in fresh processes.

``tests/test_streaming.py`` proves in-process equivalence; this harness
closes the remaining gap for the exec layer, which ships jobs to
*worker processes*. Randomized profiles (stdlib ``random``, fixed
seeds) are simulated twice in separate subprocesses — one streaming,
one materialized — and the resulting :class:`SimulationResult` payloads
are compared field by field, together with the committed-trace digests
(the :func:`repro.cpu.trace.trace_digest` machinery the scenario
subsystem's determinism gate introduced). Any divergence reports the
exact field path that broke.
"""

import dataclasses
import json
import os
import random
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.cpu.workloads import WorkloadProfile, get_benchmark

_SRC_DIR = str(Path(repro.__file__).resolve().parents[1])

#: The child: rebuild the profile, simulate in the requested mode, and
#: emit the full result (stats tree + trace digest) as canonical JSON.
_CHILD_SCRIPT = """
import dataclasses, json, sys

from repro.cpu.simulator import Simulator
from repro.cpu.sleep import SleepRuntimeSpec
from repro.cpu.stream import MIN_CHUNK_SIZE
from repro.cpu.trace import trace_digest
from repro.cpu.workloads import WorkloadProfile, generate_trace, iter_trace

spec = json.loads(sys.stdin.read())
profile = WorkloadProfile(**spec["profile"])
streaming = spec["streaming"]
sleep = (
    SleepRuntimeSpec(**spec["sleep"]) if spec["sleep"] is not None else None
)
result = Simulator(
    profile,
    sleep=sleep,
    streaming=streaming,
    chunk_size=MIN_CHUNK_SIZE if streaming else None,
).run(spec["window"], warmup_instructions=spec["warmup"])

total = spec["window"] + spec["warmup"]
if streaming:
    digest = trace_digest(
        instr
        for chunk in iter_trace(profile, total, chunk_size=MIN_CHUNK_SIZE)
        for instr in chunk.instructions
    )
else:
    digest = trace_digest(generate_trace(profile, total))

payload = {
    "trace_digest": digest,
    "workload_name": result.workload_name,
    "num_instructions": result.num_instructions,
    "warmup_instructions": result.warmup_instructions,
    "seed": result.seed,
    "stats": dataclasses.asdict(result.stats),
}
print(json.dumps(payload, sort_keys=True))
"""


def _random_profile(seed: int) -> WorkloadProfile:
    """A randomized-but-valid profile derived from a seed benchmark.

    Stdlib ``random`` with a fixed seed: the draws perturb the mix,
    control structure, dataflow, and locality knobs across their legal
    ranges, so each case exercises a different pipeline regime.
    """
    rng = random.Random(seed)
    base = get_benchmark(rng.choice(["gzip", "mcf", "gcc", "health"]))
    frac_load = rng.uniform(0.10, 0.30)
    frac_store = rng.uniform(0.02, 0.12)
    frac_int_mult = rng.uniform(0.0, 0.10)
    return dataclasses.replace(
        base,
        name=f"differential-{seed}",
        frac_load=frac_load,
        frac_store=frac_store,
        frac_int_mult=frac_int_mult,
        mean_block_size=rng.uniform(4.0, 10.0),
        loop_branch_fraction=rng.uniform(0.2, 0.6),
        mean_loop_trips=rng.uniform(4.0, 20.0),
        mean_dep_distance=rng.uniform(2.0, 12.0),
        load_chain_prob=rng.uniform(0.0, 0.6),
        stack_prob=rng.uniform(0.05, 0.35),
        stream_prob=rng.uniform(0.05, 0.45),
        heap_hot_prob=rng.uniform(0.85, 0.99),
    )


def _run_child(spec: dict, hash_seed: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    # Different hash seeds per mode: equality must not ride on dict
    # iteration accidents.
    env["PYTHONHASHSEED"] = hash_seed
    completed = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT],
        input=json.dumps(spec),
        capture_output=True,
        text=True,
        env=env,
        check=True,
        timeout=600,
    )
    return json.loads(completed.stdout)


def _assert_same(streamed, materialized, path="result"):
    """Recursive field-by-field comparison with exact equality.

    Floats included: the streaming contract is ``==``, not approx.
    """
    assert type(streamed) is type(materialized), (
        f"{path}: type {type(streamed).__name__} != "
        f"{type(materialized).__name__}"
    )
    if isinstance(streamed, dict):
        assert streamed.keys() == materialized.keys(), f"{path}: key sets differ"
        for key in streamed:
            _assert_same(streamed[key], materialized[key], f"{path}.{key}")
    elif isinstance(streamed, list):
        assert len(streamed) == len(materialized), f"{path}: lengths differ"
        for index, (mine, theirs) in enumerate(zip(streamed, materialized)):
            _assert_same(mine, theirs, f"{path}[{index}]")
    else:
        assert streamed == materialized, (
            f"{path}: {streamed!r} != {materialized!r}"
        )


def _differential_case(seed: int, sleep: dict = None) -> None:
    profile = _random_profile(seed)
    spec = {
        "profile": dataclasses.asdict(profile),
        "window": 2_500,
        "warmup": 500,
        "sleep": sleep,
        "streaming": None,
    }
    streamed = _run_child({**spec, "streaming": True}, hash_seed="1")
    materialized = _run_child({**spec, "streaming": False}, hash_seed="2")
    assert streamed["trace_digest"] == materialized["trace_digest"]
    _assert_same(streamed, materialized)


class TestStreamingDifferential:
    @pytest.mark.parametrize("seed", [101, 202, 303])
    def test_open_loop_randomized_profiles(self, seed):
        _differential_case(seed)

    def test_closed_loop_randomized_profile(self):
        _differential_case(
            404, sleep={"policy": "GradualSleep", "wakeup_latency": 3}
        )
