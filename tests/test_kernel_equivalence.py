"""The kernel-equivalence gate (CI) plus batch-kernel machinery units.

The keystone contract of the array-batched pipeline kernel: a batch run
reproduces the walked reference *float-for-float* (``==``, not approx) —
same cycle counts, same idle histograms, same sleep-controller tallies,
same stall attribution — for every seed benchmark and for sampled
scenarios, open- and closed-loop, across chunk sizes. This is what
licenses the kernel knob's absence from the simulation cache keys: the
two engines must be observationally identical, so they may share cache
entries.

The unit half covers the machinery itself: chunk-boundary edge cases
(size-1 chunks, a single full-trace chunk, warmup and redirects landing
on boundaries), the per-policy online-sleep-threshold contract the
engine's acquire path relies on, the 2^31 cycle-count overflow
regression, knob resolution, and error parity with the walk.

The whole module skips when no C compiler is available — the batch
kernel then simply cannot exist, and the walk is unaffected. CI runs it
on a runner with ``cc``, so the gate cannot silently skip there.
"""

import dataclasses

import pytest

from repro.core.sleep_control import POLICY_BUILDERS, build_policy
from repro.core.parameters import TechnologyParameters
from repro.cpu import kernel as kernel_mod
from repro.cpu.config import MachineConfig
from repro.cpu.isa import OpClass
from repro.cpu.kernel import (
    KERNEL_BATCH,
    KERNEL_WALK,
    BatchPipeline,
    batch_kernel_available,
    check_kernel,
    chunk_trace,
    resolve_kernel,
    run_batch,
    set_default_kernel,
)
from repro.cpu.pipeline import DeadlockError, Pipeline
from repro.cpu.simulator import Simulator, simulate_workload
from repro.cpu.sleep import SleepRuntimeSpec
from repro.cpu.stream import TraceChunk
from repro.cpu.trace import TraceInstruction
from repro.cpu.workloads import benchmark_names, generate_trace, get_benchmark
from repro.exec.engine import _stamp_defaults
from repro.exec.jobs import SimulationJob
from repro.scenarios import sample_scenarios

pytestmark = pytest.mark.skipif(
    not batch_kernel_available(),
    reason="no C compiler: the batch kernel cannot be built",
)

#: Chunk sizes spanning the degenerate, the awkward, and the typical.
CHUNK_SIZES = (1, 7, 1_024)

#: Closed-loop runtime with a nonzero wakeup latency so sleep decisions
#: really feed back into timing (wakeup stalls, delayed issue).
CLOSED_LOOP = SleepRuntimeSpec(policy="MaxSleep", wakeup_latency=2)


@pytest.fixture(autouse=True)
def _reset_kernel_default():
    """Tests may set the process-wide kernel; always restore the walk."""
    yield
    set_default_kernel(None)


def _walk(trace, sleep=None, warmup=0, config=None):
    return Pipeline(list(trace), config=config, sleep_spec=sleep).run(
        warmup_instructions=warmup
    )


def _batch(trace, chunk_size, sleep=None, warmup=0, config=None):
    trace = list(trace)
    return run_batch(
        chunk_trace(trace, chunk_size),
        len(trace),
        config=config,
        sleep_spec=sleep,
        warmup_instructions=warmup,
    )


class TestEquivalenceGate:
    """Batch == walk, ``==`` exact, across the whole modeled space."""

    @pytest.mark.parametrize("name", benchmark_names())
    def test_all_benchmarks_open_loop(self, name):
        trace = list(generate_trace(get_benchmark(name), 6_000, seed=7))
        reference = _walk(trace, warmup=1_000)
        assert _batch(trace, 1_024, warmup=1_000) == reference

    @pytest.mark.parametrize("name", benchmark_names())
    def test_all_benchmarks_closed_loop(self, name):
        trace = list(generate_trace(get_benchmark(name), 5_000, seed=3))
        reference = _walk(trace, sleep=CLOSED_LOOP, warmup=500)
        assert _batch(trace, 512, sleep=CLOSED_LOOP, warmup=500) == reference

    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_chunk_size_invariance(self, chunk_size):
        trace = list(generate_trace(get_benchmark("gcc"), 4_000, seed=11))
        assert _batch(trace, chunk_size) == _walk(trace)

    @pytest.mark.parametrize("policy", sorted(POLICY_BUILDERS))
    @pytest.mark.parametrize("wakeup_latency", (0, 1, 5))
    def test_every_policy_and_wakeup_latency(self, policy, wakeup_latency):
        spec = SleepRuntimeSpec(policy=policy, wakeup_latency=wakeup_latency)
        trace = list(generate_trace(get_benchmark("mcf"), 4_000, seed=5))
        reference = _walk(trace, sleep=spec, warmup=400)
        assert _batch(trace, 777, sleep=spec, warmup=400) == reference

    def test_sampled_scenarios(self):
        for scenario in sample_scenarios(4, seed=17):
            trace = list(generate_trace(scenario.profile, 4_000, seed=2))
            assert _batch(trace, 640) == _walk(trace)
            reference = _walk(trace, sleep=CLOSED_LOOP)
            assert _batch(trace, 640, sleep=CLOSED_LOOP) == reference

    def test_record_sequences_off_matches(self):
        trace = list(generate_trace(get_benchmark("vpr"), 3_000, seed=9))
        reference = Pipeline(trace, record_sequences=False).run()
        batch = BatchPipeline(
            chunk_trace(trace, 500), len(trace), record_sequences=False
        ).run()
        assert batch == reference
        assert all(not u.idle_intervals for u in batch.fu_usage)

    def test_simulator_facade_batch_equals_walk(self):
        profile = get_benchmark("twolf")
        walk = simulate_workload(
            profile, 3_000, seed=4, use_cache=False, kernel=KERNEL_WALK
        )
        batch = simulate_workload(
            profile, 3_000, seed=4, use_cache=False, kernel=KERNEL_BATCH
        )
        assert batch.stats == walk.stats


class TestChunkBoundaryEdges:
    """Boundary placement can never matter — by construction, and here."""

    def test_single_full_trace_chunk(self):
        trace = list(generate_trace(get_benchmark("gzip"), 3_000, seed=1))
        assert _batch(trace, len(trace)) == _walk(trace)

    def test_chunk_size_one(self):
        """Every instruction delivery is a boundary; every pause between
        cycles — including cycles where a wakeup completes — must be
        state-neutral for this to pass closed-loop."""
        trace = list(generate_trace(get_benchmark("health"), 600, seed=8))
        assert _batch(trace, 1) == _walk(trace)
        reference = _walk(trace, sleep=CLOSED_LOOP)
        assert _batch(trace, 1, sleep=CLOSED_LOOP) == reference

    def test_warmup_spanning_chunk_boundary(self):
        """Warmup ends mid-chunk, at a boundary, and one past it."""
        trace = list(generate_trace(get_benchmark("parser"), 2_000, seed=6))
        for warmup in (499, 500, 501):
            reference = _walk(trace, warmup=warmup)
            assert _batch(trace, 500, warmup=warmup) == reference

    def test_mispredict_redirect_on_last_slot_of_chunk(self):
        """Chunks cut immediately after control instructions, so redirects
        (and their fetch stalls) land exactly on delivery boundaries."""
        trace = list(generate_trace(get_benchmark("gcc"), 1_500, seed=13))
        control = {OpClass.BRANCH, OpClass.CALL, OpClass.RETURN}
        boundary = next(
            i for i, ins in enumerate(trace) if ins.op in control and i > 0
        )
        reference = _walk(trace)
        assert _batch(trace, boundary + 1) == reference
        taken = next(
            i
            for i, ins in enumerate(trace)
            if ins.op == OpClass.BRANCH and ins.taken
        )
        assert _batch(trace, taken + 1) == reference

    def test_wakeup_completing_at_boundary_cycles(self):
        """Sweep chunk sizes under a long wakeup latency: some boundary
        pause then coincides with a wakeup-completion cycle."""
        trace = list(generate_trace(get_benchmark("mst"), 900, seed=21))
        spec = SleepRuntimeSpec(policy="MaxSleep", wakeup_latency=7)
        reference = _walk(trace, sleep=spec)
        for chunk_size in (1, 2, 3, 64, 899):
            assert _batch(trace, chunk_size, sleep=spec) == reference


class TestOnlineThresholdContract:
    """`online_sleep_threshold` must reproduce `sleeps_at` exactly — the
    engine's acquire path substitutes the comparison for the call."""

    @pytest.mark.parametrize("name", sorted(POLICY_BUILDERS))
    @pytest.mark.parametrize("p", (0.05, 0.5, 1.0))
    def test_threshold_matches_schedule(self, name, p):
        policy = build_policy(name, TechnologyParameters(p), alpha=0.5)
        policy.reset()
        threshold = policy.online_sleep_threshold()
        for elapsed in range(1, 200):
            expected = threshold is not None and elapsed >= threshold
            assert policy.sleeps_at(elapsed) == expected, (name, elapsed)

    def test_predictive_threshold_tracks_state(self):
        policy = build_policy(
            "PredictiveSleep", TechnologyParameters(0.5), alpha=0.5
        )
        policy.reset()
        for length in (1, 3, 200, 2, 400, 1):
            policy.on_interval(length)
            threshold = policy.online_sleep_threshold()
            for elapsed in range(1, 50):
                expected = threshold is not None and elapsed >= threshold
                assert policy.sleeps_at(elapsed) == expected, (length, elapsed)


class TestOverflowRegression:
    """int64 accumulators: cycle counts past 2^31 stay exact."""

    def test_cycle_count_past_2_31(self):
        # A serialized chain of dependent loads with a ~2^31-cycle memory
        # latency pushes total_cycles far past the int32 boundary while
        # the event-skip loop keeps both engines fast.
        latency = 2**31
        config = MachineConfig(memory_latency=latency)
        trace = [
            TraceInstruction(
                op=OpClass.LOAD, pc=4 * i, dep1=1, address=1 << 40
            )
            for i in range(3)
        ]
        max_cycles = 2**40
        reference = Pipeline(trace, config=config).run(max_cycles=max_cycles)
        batch = run_batch(
            chunk_trace(trace, 2),
            len(trace),
            config=config,
            max_cycles=max_cycles,
        )
        assert batch == reference
        assert batch.total_cycles > 2**31


class TestKernelKnob:
    """Resolution rules, cache-key exclusion, and worker stamping."""

    def test_check_and_resolve(self):
        assert check_kernel("walk") == KERNEL_WALK
        with pytest.raises(ValueError, match="unknown kernel"):
            check_kernel("vectorized")
        assert resolve_kernel(None) == KERNEL_WALK
        assert resolve_kernel("batch") == KERNEL_BATCH
        set_default_kernel("batch")
        assert resolve_kernel(None) == KERNEL_BATCH
        assert resolve_kernel("walk") == KERNEL_WALK  # explicit wins
        set_default_kernel(None)
        assert resolve_kernel(None) == KERNEL_WALK

    def test_kernel_excluded_from_cache_key(self):
        job = SimulationJob(profile=get_benchmark("gzip"), num_instructions=1_000)
        batch_job = dataclasses.replace(job, kernel=KERNEL_BATCH)
        assert batch_job.cache_key() == job.cache_key()

    def test_engine_stamps_default_kernel_into_jobs(self):
        job = SimulationJob(profile=get_benchmark("gzip"), num_instructions=1_000)
        assert _stamp_defaults(job) is job
        set_default_kernel("batch")
        assert _stamp_defaults(job).kernel == KERNEL_BATCH
        explicit = dataclasses.replace(job, kernel=KERNEL_WALK)
        assert _stamp_defaults(explicit).kernel == KERNEL_WALK

    def test_simulator_default_follows_process_default(self):
        profile = get_benchmark("vortex")
        walk = Simulator(profile, seed=6).run(1_500)
        set_default_kernel("batch")
        batch = Simulator(profile, seed=6).run(1_500)
        assert batch.stats == walk.stats


class TestErrorParity:
    """Both kernels reject the same inputs with the same messages."""

    def test_empty_trace(self):
        with pytest.raises(ValueError, match="empty trace"):
            BatchPipeline(iter(()), 0)

    def test_warmup_out_of_range(self):
        trace = list(generate_trace(get_benchmark("gzip"), 100, seed=1))
        with pytest.raises(ValueError, match="warmup"):
            BatchPipeline(chunk_trace(trace, 50), 100).run(
                warmup_instructions=100
            )

    def test_single_use(self):
        trace = list(generate_trace(get_benchmark("gzip"), 100, seed=1))
        pipeline = BatchPipeline(chunk_trace(trace, 50), 100)
        pipeline.run()
        with pytest.raises(RuntimeError, match="single-use"):
            pipeline.run()

    def test_non_contiguous_chunks(self):
        trace = list(generate_trace(get_benchmark("gzip"), 100, seed=1))
        chunks = [TraceChunk(0, trace[:50]), TraceChunk(60, trace[60:])]
        with pytest.raises(ValueError, match="non-contiguous"):
            BatchPipeline(iter(chunks), 100).run()

    def test_truncated_stream(self):
        trace = list(generate_trace(get_benchmark("gzip"), 100, seed=1))
        with pytest.raises(RuntimeError, match="stream ended"):
            BatchPipeline(chunk_trace(trace[:50], 50), 100).run()

    def test_deadlock_matches_walk(self):
        trace = list(generate_trace(get_benchmark("mcf"), 400, seed=1))
        with pytest.raises(DeadlockError):
            Pipeline(trace).run(max_cycles=10)
        with pytest.raises(DeadlockError):
            run_batch(chunk_trace(trace, 100), len(trace), max_cycles=10)
