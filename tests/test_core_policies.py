"""Unit tests for the event-driven sleep controllers."""

import pytest

from repro.core.breakeven import breakeven_interval
from repro.core.gradual import GradualSleepDesign
from repro.core.parameters import TechnologyParameters
from repro.core.policies import (
    AlwaysActivePolicy,
    BreakevenOraclePolicy,
    GradualSleepPolicy,
    MaxSleepPolicy,
    NoOverheadPolicy,
    PredictiveSleepPolicy,
    TimeoutSleepPolicy,
    paper_policy_suite,
    run_policy_on_intervals,
)


@pytest.fixture
def params():
    return TechnologyParameters(leakage_factor_p=0.5)


class TestBoundaryPolicies:
    def test_always_active(self):
        outcome = AlwaysActivePolicy().on_interval(7)
        assert outcome.uncontrolled_idle == 7
        assert outcome.sleep == 0
        assert outcome.transitions == 0

    def test_max_sleep(self):
        outcome = MaxSleepPolicy().on_interval(7)
        assert outcome.uncontrolled_idle == 0
        assert outcome.sleep == 7
        assert outcome.transitions == 1

    def test_no_overhead(self):
        outcome = NoOverheadPolicy().on_interval(7)
        assert outcome.sleep == 7
        assert outcome.transitions == 0

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            MaxSleepPolicy().on_interval(0)


class TestGradualSleepPolicy:
    def test_outcome_conserves_cycles(self, params):
        policy = GradualSleepPolicy(GradualSleepDesign(num_slices=10))
        for interval in (1, 5, 10, 50):
            outcome = policy.on_interval(interval)
            assert outcome.uncontrolled_idle + outcome.sleep == pytest.approx(
                interval
            )

    def test_partial_transitions_for_short_intervals(self, params):
        policy = GradualSleepPolicy(GradualSleepDesign(num_slices=10))
        assert policy.on_interval(5).transitions == pytest.approx(0.5)
        assert policy.on_interval(100).transitions == pytest.approx(1.0)

    def test_for_technology_uses_breakeven_slices(self, params):
        policy = GradualSleepPolicy.for_technology(params, 0.5)
        assert policy.design.num_slices == round(breakeven_interval(params, 0.5))


class TestBreakevenOracle:
    def test_sleeps_only_above_threshold(self, params):
        oracle = BreakevenOraclePolicy(params, 0.5)
        threshold = breakeven_interval(params, 0.5)
        below = oracle.on_interval(max(1, int(threshold)))
        above = oracle.on_interval(int(threshold) + 2)
        assert below.sleep == 0
        assert above.sleep == int(threshold) + 2

    def test_oracle_is_min_of_boundary_policies(self, params):
        """Per interval, the oracle matches min(MaxSleep, AlwaysActive)."""
        alpha = 0.5
        oracle = BreakevenOraclePolicy(params, alpha)
        intervals = list(range(1, 40))
        oracle_run = run_policy_on_intervals(oracle, intervals, params, alpha, 10)
        ms_run = run_policy_on_intervals(MaxSleepPolicy(), intervals, params, alpha, 10)
        aa_run = run_policy_on_intervals(
            AlwaysActivePolicy(), intervals, params, alpha, 10
        )
        assert oracle_run.total_energy <= ms_run.total_energy + 1e-9
        assert oracle_run.total_energy <= aa_run.total_energy + 1e-9


class TestPredictiveSleep:
    def test_first_decision_uses_initial_prediction(self, params):
        policy = PredictiveSleepPolicy(params, 0.5, initial_prediction=1000.0)
        outcome = policy.on_interval(1)
        assert outcome.sleep == 1  # predicted long, so slept

    def test_learns_long_intervals(self, params):
        policy = PredictiveSleepPolicy(params, 0.5, ewma_weight=1.0)
        first = policy.on_interval(500)
        second = policy.on_interval(500)
        assert first.sleep == 0  # initial prediction 0: stays awake
        assert second.sleep == 500  # learned

    def test_reset_restores_initial_state(self, params):
        policy = PredictiveSleepPolicy(params, 0.5, ewma_weight=1.0)
        policy.on_interval(500)
        policy.reset()
        assert policy.prediction == 0.0

    def test_is_stateful(self, params):
        assert not PredictiveSleepPolicy(params, 0.5).stateless

    def test_validation(self, params):
        with pytest.raises(ValueError):
            PredictiveSleepPolicy(params, 0.5, ewma_weight=0.0)
        with pytest.raises(ValueError):
            PredictiveSleepPolicy(params, 0.5, initial_prediction=-1.0)


class TestTimeoutSleep:
    def test_short_interval_never_sleeps(self):
        policy = TimeoutSleepPolicy(timeout=10)
        outcome = policy.on_interval(10)
        assert outcome.sleep == 0
        assert outcome.transitions == 0

    def test_long_interval_sleeps_after_timeout(self):
        policy = TimeoutSleepPolicy(timeout=10)
        outcome = policy.on_interval(25)
        assert outcome.uncontrolled_idle == 10
        assert outcome.sleep == 15
        assert outcome.transitions == 1

    def test_zero_timeout_is_max_sleep(self):
        policy = TimeoutSleepPolicy(timeout=0)
        outcome = policy.on_interval(5)
        assert outcome.sleep == 5
        assert outcome.transitions == 1


class TestRunPolicyOnIntervals:
    def test_counts_accumulate(self, params):
        run = run_policy_on_intervals(
            MaxSleepPolicy(), [3, 4, 5], params, 0.5, active_cycles=20
        )
        assert run.counts.active == 20
        assert run.counts.sleep == 12
        assert run.counts.transitions == 3

    def test_policy_reset_before_run(self, params):
        policy = PredictiveSleepPolicy(params, 0.5, ewma_weight=1.0)
        first = run_policy_on_intervals(policy, [500, 500], params, 0.5, 0)
        second = run_policy_on_intervals(policy, [500, 500], params, 0.5, 0)
        assert first.total_energy == pytest.approx(second.total_energy)

    def test_rejects_negative_active(self, params):
        with pytest.raises(ValueError):
            run_policy_on_intervals(MaxSleepPolicy(), [1], params, 0.5, -1)


class TestPaperPolicySuite:
    def test_order_and_names(self, params):
        suite = paper_policy_suite(params, 0.5)
        names = [p.name for p in suite]
        assert names[0] == "MaxSleep"
        assert names[1].startswith("GradualSleep")
        assert names[2] == "AlwaysActive"
        assert names[3] == "NoOverhead"
