"""Unit tests for the event-driven sleep controllers."""

import pytest

from repro.core.breakeven import breakeven_interval
from repro.core.gradual import GradualSleepDesign
from repro.core.parameters import TechnologyParameters
from repro.core.policies import (
    AlwaysActivePolicy,
    BreakevenOraclePolicy,
    GradualSleepPolicy,
    MaxSleepPolicy,
    NoOverheadPolicy,
    PredictiveSleepPolicy,
    TimeoutSleepPolicy,
    paper_policy_suite,
    run_policy_on_intervals,
)


@pytest.fixture
def params():
    return TechnologyParameters(leakage_factor_p=0.5)


class TestBoundaryPolicies:
    def test_always_active(self):
        outcome = AlwaysActivePolicy().on_interval(7)
        assert outcome.uncontrolled_idle == 7
        assert outcome.sleep == 0
        assert outcome.transitions == 0

    def test_max_sleep(self):
        outcome = MaxSleepPolicy().on_interval(7)
        assert outcome.uncontrolled_idle == 0
        assert outcome.sleep == 7
        assert outcome.transitions == 1

    def test_no_overhead(self):
        outcome = NoOverheadPolicy().on_interval(7)
        assert outcome.sleep == 7
        assert outcome.transitions == 0

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            MaxSleepPolicy().on_interval(0)


class TestGradualSleepPolicy:
    def test_outcome_conserves_cycles(self, params):
        policy = GradualSleepPolicy(GradualSleepDesign(num_slices=10))
        for interval in (1, 5, 10, 50):
            outcome = policy.on_interval(interval)
            assert outcome.uncontrolled_idle + outcome.sleep == pytest.approx(
                interval
            )

    def test_partial_transitions_for_short_intervals(self, params):
        policy = GradualSleepPolicy(GradualSleepDesign(num_slices=10))
        assert policy.on_interval(5).transitions == pytest.approx(0.5)
        assert policy.on_interval(100).transitions == pytest.approx(1.0)

    def test_for_technology_uses_breakeven_slices(self, params):
        policy = GradualSleepPolicy.for_technology(params, 0.5)
        assert policy.design.num_slices == round(breakeven_interval(params, 0.5))


class TestBreakevenOracle:
    def test_sleeps_only_above_threshold(self, params):
        oracle = BreakevenOraclePolicy(params, 0.5)
        threshold = breakeven_interval(params, 0.5)
        below = oracle.on_interval(max(1, int(threshold)))
        above = oracle.on_interval(int(threshold) + 2)
        assert below.sleep == 0
        assert above.sleep == int(threshold) + 2

    def test_oracle_is_min_of_boundary_policies(self, params):
        """Per interval, the oracle matches min(MaxSleep, AlwaysActive)."""
        alpha = 0.5
        oracle = BreakevenOraclePolicy(params, alpha)
        intervals = list(range(1, 40))
        oracle_run = run_policy_on_intervals(oracle, intervals, params, alpha, 10)
        ms_run = run_policy_on_intervals(MaxSleepPolicy(), intervals, params, alpha, 10)
        aa_run = run_policy_on_intervals(
            AlwaysActivePolicy(), intervals, params, alpha, 10
        )
        assert oracle_run.total_energy <= ms_run.total_energy + 1e-9
        assert oracle_run.total_energy <= aa_run.total_energy + 1e-9


class TestPredictiveSleep:
    def test_first_decision_uses_initial_prediction(self, params):
        policy = PredictiveSleepPolicy(params, 0.5, initial_prediction=1000.0)
        outcome = policy.on_interval(1)
        assert outcome.sleep == 1  # predicted long, so slept

    def test_learns_long_intervals(self, params):
        policy = PredictiveSleepPolicy(params, 0.5, ewma_weight=1.0)
        first = policy.on_interval(500)
        second = policy.on_interval(500)
        assert first.sleep == 0  # initial prediction 0: stays awake
        assert second.sleep == 500  # learned

    def test_reset_restores_initial_state(self, params):
        policy = PredictiveSleepPolicy(params, 0.5, ewma_weight=1.0)
        policy.on_interval(500)
        policy.reset()
        assert policy.prediction == 0.0

    def test_is_stateful(self, params):
        assert not PredictiveSleepPolicy(params, 0.5).stateless

    def test_validation(self, params):
        with pytest.raises(ValueError):
            PredictiveSleepPolicy(params, 0.5, ewma_weight=0.0)
        with pytest.raises(ValueError):
            PredictiveSleepPolicy(params, 0.5, initial_prediction=-1.0)


class TestTimeoutSleep:
    def test_short_interval_never_sleeps(self):
        policy = TimeoutSleepPolicy(timeout=10)
        outcome = policy.on_interval(10)
        assert outcome.sleep == 0
        assert outcome.transitions == 0

    def test_long_interval_sleeps_after_timeout(self):
        policy = TimeoutSleepPolicy(timeout=10)
        outcome = policy.on_interval(25)
        assert outcome.uncontrolled_idle == 10
        assert outcome.sleep == 15
        assert outcome.transitions == 1

    def test_zero_timeout_is_max_sleep(self):
        policy = TimeoutSleepPolicy(timeout=0)
        outcome = policy.on_interval(5)
        assert outcome.sleep == 5
        assert outcome.transitions == 1


class TestRunPolicyOnIntervals:
    def test_counts_accumulate(self, params):
        run = run_policy_on_intervals(
            MaxSleepPolicy(), [3, 4, 5], params, 0.5, active_cycles=20
        )
        assert run.counts.active == 20
        assert run.counts.sleep == 12
        assert run.counts.transitions == 3

    def test_policy_reset_before_run(self, params):
        policy = PredictiveSleepPolicy(params, 0.5, ewma_weight=1.0)
        first = run_policy_on_intervals(policy, [500, 500], params, 0.5, 0)
        second = run_policy_on_intervals(policy, [500, 500], params, 0.5, 0)
        assert first.total_energy == pytest.approx(second.total_energy)

    def test_rejects_negative_active(self, params):
        with pytest.raises(ValueError):
            run_policy_on_intervals(MaxSleepPolicy(), [1], params, 0.5, -1)


class TestPaperPolicySuite:
    def test_order_and_names(self, params):
        suite = paper_policy_suite(params, 0.5)
        names = [p.name for p in suite]
        assert names[0] == "MaxSleep"
        assert names[1].startswith("GradualSleep")
        assert names[2] == "AlwaysActive"
        assert names[3] == "NoOverhead"


class TestOnlineSchedules:
    """The closed-loop adapter surface every policy gained."""

    def test_always_active_never_sleeps(self):
        assert not AlwaysActivePolicy().sleeps_at(10**6)

    def test_boundary_policies_sleep_immediately(self):
        assert MaxSleepPolicy().sleeps_at(1)
        assert NoOverheadPolicy().sleeps_at(1)
        assert GradualSleepPolicy(GradualSleepDesign(4)).sleeps_at(1)

    def test_timeout_schedule_matches_outcome(self):
        policy = TimeoutSleepPolicy(timeout=5)
        for elapsed in range(1, 12):
            # Asleep at the end of an interval of length `elapsed` iff
            # on_interval bills a trailing sleep span of that length.
            assert policy.sleeps_at(elapsed) == (
                policy.on_interval(elapsed).sleep > 0
            )

    def test_predictive_schedule_is_onset_decision(self, params):
        policy = PredictiveSleepPolicy(params, 0.5, initial_prediction=1000.0)
        assert policy.sleeps_at(1)
        # The prediction only moves when the interval closes.
        assert policy.sleeps_at(500)
        # The prediction decays toward the observed short intervals only
        # as intervals close; once it crosses the threshold the onset
        # decision flips.
        for _ in range(20):
            policy.on_interval(1)
        assert not policy.sleeps_at(1)

    def test_wakeup_free_flags(self, params):
        assert NoOverheadPolicy().wakeup_free
        assert BreakevenOraclePolicy(params, 0.5).wakeup_free
        for policy in (
            AlwaysActivePolicy(),
            MaxSleepPolicy(),
            GradualSleepPolicy(GradualSleepDesign(4)),
            TimeoutSleepPolicy(3),
            PredictiveSleepPolicy(params, 0.5),
        ):
            assert not policy.wakeup_free


class TestPolicyEdgeCases:
    """Satellite coverage: boundaries where policies can silently drift."""

    def test_timeout_zero_equals_max_sleep(self, params):
        """TimeoutSleep(0) must be MaxSleep: no uncontrolled prefix at all."""
        timeout = TimeoutSleepPolicy(timeout=0)
        max_sleep = MaxSleepPolicy()
        for interval in range(1, 200):
            a = timeout.on_interval(interval)
            b = max_sleep.on_interval(interval)
            assert (a.uncontrolled_idle, a.sleep, a.transitions) == (
                b.uncontrolled_idle,
                b.sleep,
                b.transitions,
            )
            assert timeout.sleeps_at(interval) == max_sleep.sleeps_at(interval)

    def test_oracle_at_exact_breakeven_threshold(self):
        """An interval exactly at the threshold must NOT sleep (strict >):
        at break-even the energies tie, and staying awake avoids the
        (unmodeled, in open loop) performance risk."""
        # k = e_ovh = 0 makes the threshold land exactly on an integer:
        # n_be = (1 - a) / (p * (1 - a)) = 1 / p = 2.0.
        exact = TechnologyParameters(
            leakage_factor_p=0.5, sleep_ratio_k=0.0, sleep_overhead=0.0
        )
        threshold = breakeven_interval(exact, 0.5)
        assert threshold == 2.0
        oracle = BreakevenOraclePolicy(exact, 0.5)
        at = oracle.on_interval(2)
        assert at.sleep == 0 and at.uncontrolled_idle == 2
        above = oracle.on_interval(3)
        assert above.sleep == 3 and above.transitions == 1

    def test_timeout_at_exact_timeout_boundary(self):
        policy = TimeoutSleepPolicy(timeout=7)
        boundary = policy.on_interval(7)
        assert boundary.sleep == 0 and boundary.transitions == 0
        past = policy.on_interval(8)
        assert past.uncontrolled_idle == 7 and past.sleep == 1

    @pytest.mark.parametrize("interval", list(range(1, 60)) + [127, 1024, 8191])
    def test_interval_outcome_conservation_all_policies(self, params, interval):
        """uncontrolled + sleep == interval, exactly, for every policy."""
        policies = [
            AlwaysActivePolicy(),
            MaxSleepPolicy(),
            NoOverheadPolicy(),
            GradualSleepPolicy.for_technology(params, 0.5),
            GradualSleepPolicy(GradualSleepDesign(3)),
            BreakevenOraclePolicy(params, 0.5),
            TimeoutSleepPolicy(timeout=0),
            TimeoutSleepPolicy(timeout=13),
            PredictiveSleepPolicy(params, 0.5),
            PredictiveSleepPolicy(params, 0.5, initial_prediction=500.0),
        ]
        for policy in policies:
            outcome = policy.on_interval(interval)
            assert outcome.uncontrolled_idle + outcome.sleep == float(interval), (
                policy.name,
                interval,
            )


class TestStatefulPolicyReset:
    """Satellite regression: stale predictor state must never leak."""

    def test_back_to_back_evaluations_identical(self, params):
        from repro.core.accounting import EnergyAccountant

        intervals = [3, 40, 2, 90, 1, 55, 7]
        policy = PredictiveSleepPolicy(params, 0.5)
        accountant = EnergyAccountant(params, 0.5)
        first = accountant.evaluate_sequence(policy, 100, intervals)
        second = accountant.evaluate_sequence(policy, 100, intervals)
        assert first.counts == second.counts
        assert first.total_energy == second.total_energy

    def test_evaluate_many_resets_stale_state(self, params):
        from repro.core.accounting import EnergyAccountant
        from repro.util.intervals import IntervalHistogram

        intervals = [3, 40, 2, 90]
        histogram = IntervalHistogram()
        histogram.extend(intervals)
        policy = PredictiveSleepPolicy(params, 0.5)
        accountant = EnergyAccountant(params, 0.5)
        clean = accountant.evaluate_many(
            [policy], 100, histogram, interval_sequence=intervals
        )[policy.name]
        # Poison the cross-interval state; a defensive reset must erase it.
        policy.prediction = 1e9
        dirty = accountant.evaluate_many(
            [policy], 100, histogram, interval_sequence=intervals
        )[policy.name]
        assert clean.counts == dirty.counts
        assert clean.total_energy == dirty.total_energy

    def test_run_policy_on_intervals_resets(self, params):
        policy = PredictiveSleepPolicy(params, 0.5)
        policy.prediction = 1e9
        run = run_policy_on_intervals(policy, [2, 2, 2], params, 0.5, 10)
        # A fresh policy never sleeps on short intervals; the poisoned
        # prediction would have slept all of them.
        assert run.counts.sleep == 0
