"""Property-based tests on the core model invariants.

These encode the paper's structural claims as laws over the whole
parameter space rather than spot values:

* algebraic consistency between the energy formulations,
* policy dominance (NoOverhead is a true lower bound; the oracle is the
  per-interval optimum),
* break-even consistency (MaxSleep beats AlwaysActive exactly when the
  interval exceeds the break-even length),
* GradualSleep's cycle conservation and limiting behavior,
* cache/TLB structural invariants,
* predictor counter behavior.

Two generator styles coexist deliberately. The hypothesis-based classes
shrink failures and explore the space adaptively; the stdlib-``random``
classes at the bottom (``*Randomized``) use fixed seeds so every run —
including CI — replays the exact same cases, which is what the interval
/accounting/streaming invariants want from a regression suite: a
reproducible sample, not a fresh search.
"""

import dataclasses
import math
import random

from hypothesis import given
from hypothesis import strategies as st

import numpy as np
import pytest

from repro.core.accounting import EnergyAccountant
from repro.core.breakeven import breakeven_interval
from repro.core.energy_model import CycleCounts, relative_energy
from repro.core.gradual import GradualSleepDesign
from repro.core.parameters import TechnologyParameters
from repro.core.policies import (
    AlwaysActivePolicy,
    BreakevenOraclePolicy,
    GradualSleepPolicy,
    MaxSleepPolicy,
    NoOverheadPolicy,
    PredictiveSleepPolicy,
    TimeoutSleepPolicy,
    run_policy_on_intervals,
)
from repro.core.vectorized import exact_weighted_sum
from repro.cpu.stream import MIN_CHUNK_SIZE, StreamingTrace
from repro.cpu.trace import trace_digest
from repro.cpu.workloads import (
    _walk_trace,
    generate_trace,
    get_benchmark,
    iter_trace,
)
from repro.core.transition import (
    always_active_interval_energy,
    max_sleep_interval_energy,
)
from repro.cpu.branch import SaturatingCounterTable
from repro.cpu.caches import SetAssociativeCache
from repro.cpu.config import CacheConfig
from repro.cpu.fu import FunctionalUnitPool
from repro.util.intervals import IntervalHistogram, log2_bucket

# Strategy building blocks.
techs = st.builds(
    TechnologyParameters,
    leakage_factor_p=st.floats(0.01, 1.0),
    sleep_ratio_k=st.floats(0.0, 0.1),
    sleep_overhead=st.floats(0.0, 0.2),
    duty_cycle=st.floats(0.1, 1.0),
)
alphas = st.floats(0.0, 1.0)
interval_lists = st.lists(st.integers(1, 500), min_size=1, max_size=40)


class TestEnergyModelLaws:
    @given(techs, alphas, st.floats(0, 1e5), st.floats(0, 1e5), st.floats(0, 1e5))
    def test_total_is_sum_of_breakdown(self, params, alpha, active, uidle, sleep):
        counts = CycleCounts(
            active=active,
            uncontrolled_idle=uidle,
            sleep=sleep,
            transitions=min(active, sleep),
        )
        breakdown = relative_energy(params, alpha, counts)
        component_sum = (
            breakdown.dynamic
            + breakdown.active_leakage
            + breakdown.uncontrolled_idle_leakage
            + breakdown.sleep_leakage
            + breakdown.transition_dynamic
            + breakdown.transition_overhead
        )
        assert breakdown.total == pytest.approx(component_sum)
        assert breakdown.total >= 0

    @given(techs, alphas)
    def test_per_cycle_energy_ordering(self, params, alpha):
        """Sleep cycles never leak more than uncontrolled idle cycles,
        which never cost more than active cycles."""
        assert params.sleep_cycle_energy() <= params.uncontrolled_idle_energy(
            alpha
        ) + 1e-15
        assert (
            params.uncontrolled_idle_energy(alpha)
            <= params.active_cycle_energy(alpha) + 1e-15
        )

    @given(techs, alphas, st.floats(1, 1e4), st.floats(0.1, 10))
    def test_energy_scales_linearly(self, params, alpha, active, factor):
        counts = CycleCounts(active=active, uncontrolled_idle=active / 2)
        one = relative_energy(params, alpha, counts).total
        scaled = relative_energy(params, alpha, counts.scaled(factor)).total
        assert scaled == pytest.approx(one * factor, rel=1e-9)


class TestPolicyDominanceLaws:
    @given(techs, st.floats(0.0, 0.99), interval_lists)
    def test_no_overhead_is_global_lower_bound(self, params, alpha, intervals):
        accountant = EnergyAccountant(params, alpha)
        hist = IntervalHistogram()
        hist.extend(intervals)
        lower = accountant.evaluate_histogram(NoOverheadPolicy(), 10, hist)
        for policy in (
            MaxSleepPolicy(),
            AlwaysActivePolicy(),
            GradualSleepPolicy.for_technology(params, alpha),
            BreakevenOraclePolicy(params, alpha),
        ):
            result = accountant.evaluate_histogram(policy, 10, hist)
            assert result.total_energy >= lower.total_energy - 1e-9

    @given(techs, st.floats(0.0, 0.99), interval_lists)
    def test_oracle_is_per_interval_optimum(self, params, alpha, intervals):
        oracle = run_policy_on_intervals(
            BreakevenOraclePolicy(params, alpha), intervals, params, alpha, 0
        )
        best_possible = sum(
            min(
                max_sleep_interval_energy(params, alpha, L),
                always_active_interval_energy(params, alpha, L),
            )
            for L in intervals
        )
        assert oracle.total_energy == pytest.approx(best_possible, rel=1e-9)

    @given(techs, st.floats(0.0, 0.99), st.integers(1, 1000))
    def test_breakeven_separates_policies(self, params, alpha, interval):
        """MaxSleep beats AlwaysActive on an interval iff it is longer
        than the break-even length (equation 4)."""
        n_be = breakeven_interval(params, alpha)
        ms = max_sleep_interval_energy(params, alpha, interval)
        aa = always_active_interval_energy(params, alpha, interval)
        if interval > n_be + 1e-9:
            assert ms < aa + 1e-12
        elif interval < n_be - 1e-9:
            assert ms > aa - 1e-12


class TestGradualSleepLaws:
    @given(
        st.integers(1, 64),
        st.integers(1, 500),
        techs,
        st.floats(0.0, 1.0),
    )
    def test_cycle_conservation(self, slices, interval, params, alpha):
        policy = GradualSleepPolicy(GradualSleepDesign(num_slices=slices))
        outcome = policy.on_interval(interval)
        assert outcome.uncontrolled_idle + outcome.sleep == pytest.approx(
            float(interval)
        )
        assert 0.0 <= outcome.transitions <= 1.0

    @given(st.integers(1, 64), techs, st.floats(0.0, 0.99))
    def test_gradual_bounded_by_extremes_in_limit(self, slices, params, alpha):
        """For long intervals GradualSleep costs at least MaxSleep but at
        most AlwaysActive."""
        design = GradualSleepDesign(num_slices=slices)
        interval = slices * 50 + 100
        gradual = design.interval_energy(params, alpha, interval)
        ms = max_sleep_interval_energy(params, alpha, interval)
        aa = always_active_interval_energy(params, alpha, interval)
        assert gradual >= ms - 1e-9
        assert gradual <= aa + params.transition_energy(alpha) + 1e-9

    @given(techs, alphas, st.integers(1, 64), st.integers(0, 10_000))
    def test_policy_path_reproduces_design_closed_form_exactly(
        self, params, alpha, slices, draw
    ):
        """GradualSleepPolicy.on_interval priced by relative_energy must
        equal GradualSleepDesign.interval_energy with ``==`` — the two
        closed forms live in different files and must never drift."""
        design = GradualSleepDesign(num_slices=slices)
        interval = 1 + draw % (4 * slices)
        outcome = GradualSleepPolicy(design).on_interval(interval)
        counts = CycleCounts(
            active=0.0,
            uncontrolled_idle=outcome.uncontrolled_idle,
            sleep=outcome.sleep,
            transitions=outcome.transitions,
        )
        assert (
            relative_energy(params, alpha, counts).total
            == design.interval_energy(params, alpha, interval)
        )


class TestHistogramLaws:
    @given(interval_lists)
    def test_histogram_totals(self, intervals):
        hist = IntervalHistogram()
        hist.extend(intervals)
        assert hist.num_intervals == len(intervals)
        assert hist.total_idle_cycles == sum(intervals)
        assert sum(hist.bucketed_time().values()) == sum(intervals)

    @given(st.integers(1, 100000))
    def test_bucket_is_smallest_covering_power(self, interval):
        bucket = log2_bucket(interval)
        assert bucket >= min(interval, 8192)
        if bucket > 1 and interval <= 8192:
            assert bucket // 2 < interval


class TestStructuralLaws:
    @given(st.lists(st.integers(0, 2**20), min_size=1, max_size=200))
    def test_cache_occupancy_bounded(self, addresses):
        cache = SetAssociativeCache(
            CacheConfig(size_bytes=4096, ways=2, line_bytes=64, hit_latency=1)
        )
        for address in addresses:
            cache.lookup(address)
        for entry in cache._sets:
            assert len(entry) <= 2
        assert cache.misses <= cache.accesses

    @given(st.lists(st.booleans(), min_size=1, max_size=200))
    def test_counter_stays_in_range(self, outcomes):
        table = SaturatingCounterTable(16)
        for taken in outcomes:
            table.update(5, taken)
            assert 0 <= table.counter(5) <= 3

    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(1, 3)),
            min_size=1,
            max_size=50,
        )
    )
    def test_fu_pool_conservation(self, claims):
        """However ops are scheduled, busy + idle == total per unit."""
        pool = FunctionalUnitPool(2)
        cycle = 0
        for gap, duration in claims:
            cycle += gap
            pool.acquire(cycle, duration)
            cycle += 1
        end = cycle + 10
        pool.finalize(end)
        for unit in range(2):
            idle = pool.histograms[unit].total_idle_cycles
            assert pool.busy_cycles[unit] + idle == end


# -- stdlib-random properties (fixed seeds: reproducible samples) --------------


def _random_histogram(rng: random.Random) -> IntervalHistogram:
    """A random exact-count histogram with a heavy-tailed length mix."""
    histogram = IntervalHistogram()
    for _ in range(rng.randint(1, 60)):
        length = rng.choice(
            (rng.randint(1, 8), rng.randint(1, 200), rng.randint(1, 5_000))
        )
        histogram.add(length, count=rng.randint(1, 20))
    return histogram


def _policy_suite(rng: random.Random):
    """Every policy class, with randomized parameterizations."""
    params = TechnologyParameters(leakage_factor_p=rng.uniform(0.01, 1.0))
    alpha = rng.uniform(0.0, 0.99)
    return [
        AlwaysActivePolicy(),
        MaxSleepPolicy(),
        NoOverheadPolicy(),
        GradualSleepPolicy(GradualSleepDesign(num_slices=rng.randint(1, 64))),
        BreakevenOraclePolicy(params, alpha),
        TimeoutSleepPolicy(timeout=rng.randint(0, 50)),
        PredictiveSleepPolicy(params, alpha, ewma_weight=rng.uniform(0.1, 1.0)),
    ]


class TestOutcomeConservationRandomized:
    """Every policy conserves cycles on every interval it is shown.

    ``uncontrolled_idle + sleep == interval`` for each interval of a
    random histogram, whatever the policy's state — the invariant both
    the open-loop accountant and the closed-loop tallies rest on.
    """

    @pytest.mark.parametrize("seed", range(8))
    def test_conservation_over_random_histograms(self, seed):
        rng = random.Random(1_000 + seed)
        histogram = _random_histogram(rng)
        for policy in _policy_suite(rng):
            policy.reset()
            for length, count in histogram:
                for _ in range(count):
                    outcome = policy.on_interval(length)
                    assert outcome.uncontrolled_idle + outcome.sleep == (
                        pytest.approx(float(length), abs=1e-9)
                    ), (policy.name, length)
                    assert 0.0 <= outcome.transitions <= 1.0, policy.name


class TestExactWeightedSumRandomized:
    """``exact_weighted_sum`` really is the scalar loop, and its value
    stays within float rounding of the exactly-rounded ``math.fsum``."""

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_scalar_left_fold_bitwise(self, seed):
        rng = random.Random(2_000 + seed)
        size = rng.randint(0, 400)
        values = np.array(
            [rng.uniform(0.0, 1e6) for _ in range(size)], dtype=np.float64
        )
        counts = np.array(
            [float(rng.randint(1, 1_000)) for _ in range(size)],
            dtype=np.float64,
        )
        scalar = 0.0
        for value, count in zip(values.tolist(), counts.tolist()):
            scalar += value * count
        assert exact_weighted_sum(values, counts) == scalar

    @pytest.mark.parametrize("seed", range(8))
    def test_agrees_with_fsum(self, seed):
        rng = random.Random(3_000 + seed)
        size = rng.randint(1, 400)
        values = np.array(
            [rng.uniform(0.0, 1e9) for _ in range(size)], dtype=np.float64
        )
        counts = np.array(
            [float(rng.randint(1, 10_000)) for _ in range(size)],
            dtype=np.float64,
        )
        exact = math.fsum(
            value * count for value, count in zip(values.tolist(), counts.tolist())
        )
        assert exact_weighted_sum(values, counts) == pytest.approx(
            exact, rel=1e-12
        )


class TestChunkBoundaryInvarianceRandomized:
    """Where chunk boundaries fall can never change the stream.

    For random profiles, lengths, and chunk sizes: the chunked iterator
    flattens to exactly the materialized trace, chunks tile the index
    space contiguously, and a :class:`StreamingTrace` read sequentially
    reproduces the same digest.
    """

    @pytest.mark.parametrize("seed", range(6))
    def test_random_chunk_sizes_flatten_identically(self, seed):
        rng = random.Random(4_000 + seed)
        profile = get_benchmark(
            rng.choice(["gzip", "mcf", "gcc", "health", "mst"])
        )
        length = rng.randint(200, 4_000)
        trace_seed = rng.randint(1, 10_000)
        reference = generate_trace(profile, length, seed=trace_seed)
        chunk_size = rng.randint(MIN_CHUNK_SIZE, 2_048)
        chunks = list(
            iter_trace(profile, length, seed=trace_seed, chunk_size=chunk_size)
        )
        assert [chunk.start for chunk in chunks] == list(
            range(0, length, chunk_size)
        )
        assert chunks[-1].end == length
        assert all(len(chunk) == chunk_size for chunk in chunks[:-1])
        flat = [instr for chunk in chunks for instr in chunk.instructions]
        assert flat == reference

        streaming = StreamingTrace(
            iter_trace(profile, length, seed=trace_seed, chunk_size=chunk_size),
            length,
        )
        assert trace_digest(streaming) == trace_digest(reference)


class TestColumnarDigestRandomized:
    """The columnar drain mirrors the reference walk draw for draw.

    For random profiles (every generation knob perturbed across its
    legal range) and random chunk sizes: the column-backed chunk stream
    out of :func:`iter_trace` is *digest-identical* to the
    per-instruction reference walk — same integers in every field of
    every slot, not merely the same simulation results. This is the
    randomized flank of the fixed-case gate in ``test_columnar.py``:
    profiles the seed benchmarks never visit (extreme dependency
    distances, store-heavy mixes, degenerate loop structure) must
    replay the same RNG draw order through both implementations.
    """

    @staticmethod
    def _random_profile(rng: random.Random):
        base = get_benchmark(
            rng.choice(["gzip", "mcf", "gcc", "health", "vortex"])
        )
        return dataclasses.replace(
            base,
            name=f"columnar-prop-{rng.randint(0, 10**9)}",
            frac_load=rng.uniform(0.05, 0.35),
            frac_store=rng.uniform(0.0, 0.15),
            frac_int_mult=rng.uniform(0.0, 0.12),
            mean_block_size=rng.uniform(3.0, 12.0),
            loop_branch_fraction=rng.uniform(0.0, 0.8),
            mean_loop_trips=rng.uniform(1.0, 30.0),
            mean_dep_distance=rng.uniform(1.0, 16.0),
            load_chain_prob=rng.uniform(0.0, 0.8),
            stack_prob=rng.uniform(0.0, 0.4),
            stream_prob=rng.uniform(0.0, 0.5),
            heap_hot_prob=rng.uniform(0.5, 1.0),
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_random_profiles_digest_identical(self, seed):
        rng = random.Random(7_000 + seed)
        profile = self._random_profile(rng)
        length = rng.randint(500, 6_000)
        trace_seed = rng.randint(1, 10_000)
        chunk_size = rng.randint(MIN_CHUNK_SIZE, 4_096)
        reference = list(_walk_trace(profile, length, trace_seed))
        chunks = list(
            iter_trace(profile, length, seed=trace_seed, chunk_size=chunk_size)
        )
        assert all(chunk.is_columnar for chunk in chunks)
        columnar = [
            instr for chunk in chunks for instr in chunk.instructions
        ]
        assert trace_digest(columnar) == trace_digest(reference)

    @pytest.mark.parametrize("seed", range(4))
    def test_python_drain_matches_c_walker_on_random_profiles(
        self, seed, monkeypatch
    ):
        """Engine dispatch can never change the stream: the same random
        profile generated with and without ``REPRO_TRACE_ENGINE=python``
        yields one digest (a no-op comparison where no compiler exists,
        since both runs then use the Python drain)."""
        rng = random.Random(9_100 + seed)
        profile = self._random_profile(rng)
        length = rng.randint(500, 5_000)
        trace_seed = rng.randint(1, 10_000)
        native = trace_digest(
            [
                instr
                for chunk in iter_trace(profile, length, seed=trace_seed)
                for instr in chunk.instructions
            ]
        )
        monkeypatch.setenv("REPRO_TRACE_ENGINE", "python")
        forced = trace_digest(
            [
                instr
                for chunk in iter_trace(profile, length, seed=trace_seed)
                for instr in chunk.instructions
            ]
        )
        assert native == forced
