"""Unit tests for the usage-factor closed forms (equations 6-9)."""

import pytest

from repro.core.breakeven import breakeven_interval
from repro.core.parameters import TechnologyParameters
from repro.core.policy_energy import (
    ALWAYS_ACTIVE,
    MAX_SLEEP,
    NO_OVERHEAD,
    UsageScenario,
    baseline_energy,
    policy_cycle_counts,
    policy_energies,
)


def scenario(usage=0.5, idle=10.0, alpha=0.5, cycles=1e6):
    return UsageScenario(
        total_cycles=cycles,
        usage_factor=usage,
        mean_idle_interval=idle,
        alpha=alpha,
    )


class TestUsageScenario:
    def test_cycle_split(self):
        s = scenario(usage=0.3, cycles=1000)
        assert s.active_cycles == pytest.approx(300)
        assert s.idle_cycles == pytest.approx(700)

    def test_validation(self):
        with pytest.raises(ValueError):
            scenario(usage=1.5)
        with pytest.raises(ValueError):
            scenario(idle=0.5)
        with pytest.raises(ValueError):
            scenario(cycles=0)


class TestPolicyCycleCounts:
    def test_always_active(self):
        counts = policy_cycle_counts(scenario(), ALWAYS_ACTIVE)
        assert counts.sleep == 0
        assert counts.transitions == 0
        assert counts.uncontrolled_idle == pytest.approx(5e5)

    def test_max_sleep_transitions(self):
        counts = policy_cycle_counts(scenario(usage=0.5, idle=10.0), MAX_SLEEP)
        assert counts.uncontrolled_idle == 0
        assert counts.sleep == pytest.approx(5e5)
        assert counts.transitions == pytest.approx(5e4)

    def test_max_sleep_transition_cap(self):
        """The min() in equation (7): one transition per active cycle max."""
        s = scenario(usage=0.01, idle=1.0)  # idle cycles >> active cycles
        counts = policy_cycle_counts(s, MAX_SLEEP)
        assert counts.transitions == pytest.approx(s.active_cycles)

    def test_no_overhead_is_free(self):
        counts = policy_cycle_counts(scenario(), NO_OVERHEAD)
        assert counts.transitions == 0
        assert counts.sleep == pytest.approx(5e5)

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            policy_cycle_counts(scenario(), "Nonsense")


class TestPolicyEnergies:
    def test_no_overhead_is_lower_bound(self):
        for p in (0.05, 0.5, 1.0):
            params = TechnologyParameters(leakage_factor_p=p)
            e = policy_energies(params, scenario())
            assert e.no_overhead <= e.max_sleep + 1e-12
            assert e.no_overhead <= e.always_active + 1e-12
            assert e.no_overhead <= e.gradual_sleep + 1e-12

    def test_figure4b_low_p_ordering(self):
        """At p=0.05 and 10-cycle idles (below break-even ~20), MaxSleep
        loses to AlwaysActive."""
        params = TechnologyParameters(leakage_factor_p=0.05)
        e = policy_energies(params, scenario(idle=10.0))
        assert e.max_sleep > e.always_active

    def test_figure4b_high_p_ordering(self):
        """At p=0.5 (break-even ~2 cycles) MaxSleep wins."""
        params = TechnologyParameters(leakage_factor_p=0.5)
        e = policy_energies(params, scenario(idle=10.0))
        assert e.max_sleep < e.always_active

    def test_figure4c_long_idle_converges_to_no_overhead(self):
        """At 100-cycle idles the transition amortizes away."""
        params = TechnologyParameters(leakage_factor_p=0.5)
        e = policy_energies(params, scenario(usage=0.10, idle=100.0))
        assert (e.max_sleep - e.no_overhead) / e.no_overhead < 0.06
        # ... and much closer than at 10-cycle idles.
        e_short = policy_energies(params, scenario(usage=0.10, idle=10.0))
        gap_long = e.max_sleep - e.no_overhead
        gap_short = e_short.max_sleep - e_short.no_overhead
        assert gap_long < gap_short / 5

    def test_figure4d_worst_case(self):
        """Idle interval 1: MaxSleep pays a transition every other cycle."""
        params = TechnologyParameters(leakage_factor_p=0.05)
        e = policy_energies(params, scenario(usage=0.5, idle=1.0))
        assert e.max_sleep > 1.2 * e.always_active

    def test_high_usage_compresses_differences(self):
        """Figure 4b: at 90% usage the policies bunch together."""
        params = TechnologyParameters(leakage_factor_p=0.5)
        low = policy_energies(params, scenario(usage=0.10))
        high = policy_energies(params, scenario(usage=0.90))
        spread_low = low.always_active - low.no_overhead
        spread_high = high.always_active - high.no_overhead
        assert spread_high < spread_low

    def test_gradual_between_extremes_far_from_breakeven(self):
        params = TechnologyParameters(leakage_factor_p=0.5)
        n_be = breakeven_interval(params, 0.5)
        long_idle = scenario(idle=max(10.0, 20 * n_be))
        e = policy_energies(params, long_idle)
        assert e.max_sleep <= e.gradual_sleep <= e.always_active

    def test_as_dict_keys(self):
        params = TechnologyParameters(leakage_factor_p=0.5)
        d = policy_energies(params, scenario()).as_dict()
        assert set(d) == {ALWAYS_ACTIVE, MAX_SLEEP, NO_OVERHEAD, "GradualSleep"}

    def test_baseline_energy_equation9(self):
        params = TechnologyParameters(leakage_factor_p=0.5)
        s = scenario(cycles=1000)
        assert baseline_energy(params, s) == pytest.approx(
            1000 * params.active_cycle_energy(0.5)
        )
