"""Unit tests for the functional-unit pool and idle tracking."""

import pytest

from repro.cpu.fu import FunctionalUnitPool


class TestAcquire:
    def test_round_robin_rotation(self):
        pool = FunctionalUnitPool(3)
        assert pool.acquire(0, 1) == 0
        assert pool.acquire(0, 1) == 1
        assert pool.acquire(0, 1) == 2
        assert pool.acquire(0, 1) is None  # all busy this cycle
        assert pool.acquire(1, 1) == 0  # pointer wrapped

    def test_multicycle_occupancy(self):
        pool = FunctionalUnitPool(1)
        assert pool.acquire(0, 3) == 0
        assert pool.acquire(1, 1) is None
        assert pool.acquire(2, 1) is None
        assert pool.acquire(3, 1) == 0

    def test_any_free(self):
        pool = FunctionalUnitPool(2)
        pool.acquire(0, 5)
        assert pool.any_free(0)
        pool.acquire(0, 5)
        assert not pool.any_free(0)
        assert pool.any_free(5)

    def test_duration_validation(self):
        with pytest.raises(ValueError):
            FunctionalUnitPool(1).acquire(0, 0)

    def test_pool_size_validation(self):
        with pytest.raises(ValueError):
            FunctionalUnitPool(0)


class TestIdleTracking:
    def test_gap_becomes_interval(self):
        pool = FunctionalUnitPool(1)
        pool.acquire(0, 1)   # busy cycle 0
        pool.acquire(5, 1)   # idle 1-4 -> interval of 4
        pool.finalize(10)    # idle 6-9 -> interval of 4
        assert pool.interval_sequences[0] == [4, 4]
        assert pool.histograms[0].counts == {4: 2}

    def test_leading_idle_counted(self):
        pool = FunctionalUnitPool(1)
        pool.acquire(3, 1)
        pool.finalize(4)
        assert pool.interval_sequences[0] == [3]

    def test_never_used_unit_is_one_interval(self):
        pool = FunctionalUnitPool(2)
        pool.acquire(0, 1)
        pool.finalize(10)
        assert pool.interval_sequences[1] == [10]

    def test_busy_plus_idle_equals_total(self):
        pool = FunctionalUnitPool(2)
        for cycle in (0, 3, 4, 10):
            pool.acquire(cycle, 2)
        pool.finalize(20)
        for unit in range(2):
            idle = pool.histograms[unit].total_idle_cycles
            assert pool.busy_cycles[unit] + idle == 20

    def test_idle_fraction(self):
        pool = FunctionalUnitPool(2)
        pool.acquire(0, 5)  # unit 0 busy 5 of 10
        pool.finalize(10)
        assert pool.idle_fraction(10) == pytest.approx(0.75)

    def test_combined_histogram(self):
        pool = FunctionalUnitPool(2)
        pool.acquire(2, 1)  # unit 0: leading idle 2
        pool.acquire(2, 1)  # unit 1: leading idle 2
        pool.finalize(3)
        combined = pool.combined_histogram()
        assert combined.counts == {2: 2}

    def test_finalize_idempotent_and_freezes(self):
        pool = FunctionalUnitPool(1)
        pool.acquire(0, 1)
        pool.finalize(5)
        pool.finalize(5)  # no-op
        assert pool.interval_sequences[0] == [4]
        with pytest.raises(RuntimeError):
            pool.acquire(6, 1)


class TestWarmupReset:
    def test_reset_discards_history(self):
        pool = FunctionalUnitPool(1)
        pool.acquire(0, 1)
        pool.acquire(10, 1)  # interval of 9 recorded
        pool.reset_statistics(20)
        pool.acquire(25, 1)  # idle 20-24 -> interval of 5
        pool.finalize(30)
        assert pool.interval_sequences[0] == [5, 4]
        assert pool.operations[0] == 1
        assert pool.busy_cycles[0] == 1

    def test_reset_counts_inflight_overhang(self):
        pool = FunctionalUnitPool(1)
        pool.acquire(8, 5)  # busy 8-12
        pool.reset_statistics(10)  # overhang: cycles 10-12
        pool.finalize(20)
        assert pool.busy_cycles[0] == 3
        # Idle 13-19 after the in-flight op drains.
        assert pool.interval_sequences[0] == [7]
        assert pool.busy_cycles[0] + pool.histograms[0].total_idle_cycles == 10
