"""Tests for the closed-loop energy-vs-slowdown experiment."""

from repro.experiments import perf_impact
from repro.experiments.common import QUICK_SCALE


def small_run(**overrides):
    kwargs = dict(
        scale=QUICK_SCALE,
        policies=("MaxSleep", "GradualSleep"),
        p_values=(0.5,),
        alpha=0.5,
        wakeup_latencies=(0, 4),
        benchmarks=("gzip", "mcf"),
    )
    kwargs.update(overrides)
    return perf_impact.run(**kwargs)


class TestPerfImpact:
    def test_zero_latency_has_zero_slowdown(self):
        result = small_run()
        for name in result.benchmarks:
            for policy in result.policies:
                point = result.point(name, policy, 0.5, 0)
                assert point.slowdown == 0.0
                assert point.wakeup_stall_cycles == 0

    def test_latency_costs_performance_and_energy_headroom(self):
        result = small_run()
        for name in result.benchmarks:
            point = result.point(name, "MaxSleep", 0.5, 4)
            free = result.point(name, "MaxSleep", 0.5, 0)
            assert point.slowdown > 0.0
            assert point.wakeup_stall_cycles > 0
            # Wakeup thrash can only cost energy relative to free wakeups.
            assert point.energy_savings <= free.energy_savings

    def test_savings_positive_at_high_leakage(self):
        result = small_run()
        for name in result.benchmarks:
            for policy in result.policies:
                assert result.point(name, policy, 0.5, 4).energy_savings > 0.0

    def test_curve_spans_latencies(self):
        result = small_run()
        curve = result.curve("gzip", "MaxSleep", 0.5)
        assert [point.wakeup_latency for point in curve] == [0, 4]
        assert curve[0].baseline_cycles == curve[1].baseline_cycles

    def test_render_mentions_every_policy_and_benchmark(self):
        result = small_run()
        text = perf_impact.render(result)
        for policy in result.policies:
            assert policy in text
        for name in result.benchmarks:
            assert name in text
        assert "frontier" in text

    def test_perf_jobs_enumerates_baselines_and_closed_runs(self):
        jobs = perf_impact.perf_jobs(
            scale=QUICK_SCALE,
            policies=("MaxSleep",),
            p_values=(0.5,),
            alpha=0.5,
            wakeup_latencies=(0, 4),
            benchmarks=("gzip",),
        )
        # One sleep-oblivious baseline + one job per (policy, latency).
        assert len(jobs) == 3
        assert sum(1 for job in jobs if job.sleep is None) == 1
        assert all(not job.record_sequences for job in jobs)
        assert len({job.cache_key() for job in jobs}) == 3

    def test_stateful_policy_supported_closed_loop(self):
        result = small_run(
            policies=("PredictiveSleep",), benchmarks=("gzip",),
            wakeup_latencies=(4,),
        )
        point = result.point("gzip", "PredictiveSleep", 0.5, 4)
        assert point.slowdown >= 0.0
        assert 0.0 < point.normalized_energy < 1.5
