"""Unit tests for trace representation and the synthetic workloads."""

import pytest

from repro.cpu.isa import OpClass
from repro.cpu.trace import (
    TraceInstruction,
    dependency_distances,
    trace_mix,
    validate_trace,
)
from repro.cpu.workloads import (
    BENCHMARKS,
    benchmark_names,
    generate_trace,
    get_benchmark,
)


class TestTraceInstruction:
    def test_slots_prevent_arbitrary_attributes(self):
        instr = TraceInstruction(OpClass.INT_ALU, 0x1000)
        with pytest.raises(AttributeError):
            instr.bogus = 1

    def test_validate_accepts_generated_traces(self):
        trace = generate_trace(get_benchmark("gzip"), 2000)
        validate_trace(trace)

    def test_validate_rejects_forward_deps(self):
        trace = [TraceInstruction(OpClass.INT_ALU, 0, dep1=1)]
        with pytest.raises(ValueError):
            validate_trace(trace)

    def test_validate_rejects_taken_branch_without_target(self):
        trace = [TraceInstruction(OpClass.BRANCH, 4, taken=True, target=0)]
        with pytest.raises(ValueError):
            validate_trace(trace)

    def test_trace_mix_sums_to_one(self):
        trace = generate_trace(get_benchmark("twolf"), 3000)
        mix = trace_mix(trace)
        assert sum(mix.values()) == pytest.approx(1.0)

    def test_trace_mix_empty(self):
        assert trace_mix([]) == {}


class TestBenchmarkRegistry:
    def test_nine_benchmarks_in_paper_order(self):
        assert benchmark_names() == [
            "health", "mst", "gcc", "gzip", "mcf",
            "parser", "twolf", "vortex", "vpr",
        ]
        assert set(benchmark_names()) == set(BENCHMARKS)

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            get_benchmark("nonsense")

    def test_reference_values_match_table3(self):
        expected = {
            "health": (0.560, 0.554, 2),
            "mst": (1.748, 1.748, 4),
            "gcc": (1.622, 1.619, 2),
            "gzip": (2.120, 2.120, 4),
            "mcf": (0.523, 0.503, 2),
            "parser": (1.692, 1.692, 4),
            "twolf": (1.542, 1.475, 3),
            "vortex": (2.387, 2.387, 4),
            "vpr": (1.481, 1.431, 3),
        }
        for name, (max_ipc, ipc, fus) in expected.items():
            profile = get_benchmark(name)
            assert profile.reference_max_ipc == max_ipc
            assert profile.reference_ipc == ipc
            assert profile.reference_fus == fus

    def test_body_mix_is_normalized(self):
        for profile in BENCHMARKS.values():
            assert profile.frac_int_alu >= 0.0


class TestGenerateTrace:
    def test_deterministic(self):
        a = generate_trace(get_benchmark("gcc"), 1000, seed=7)
        b = generate_trace(get_benchmark("gcc"), 1000, seed=7)
        assert len(a) == len(b) == 1000
        for x, y in zip(a, b):
            assert (x.op, x.pc, x.dep1, x.dep2, x.address, x.taken, x.target) == (
                y.op, y.pc, y.dep1, y.dep2, y.address, y.taken, y.target
            )

    def test_seed_changes_trace(self):
        a = generate_trace(get_benchmark("gcc"), 1000, seed=7)
        b = generate_trace(get_benchmark("gcc"), 1000, seed=8)
        assert any(
            (x.pc, x.taken) != (y.pc, y.taken) for x, y in zip(a, b)
        )

    def test_exact_length(self):
        for n in (1, 17, 500):
            assert len(generate_trace(get_benchmark("mst"), n)) == n

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            generate_trace(get_benchmark("mst"), 0)

    def test_control_flow_consistency(self):
        """A taken control op's target is the next instruction's PC."""
        trace = generate_trace(get_benchmark("parser"), 4000)
        control = (OpClass.BRANCH, OpClass.CALL, OpClass.RETURN)
        checked = 0
        for current, following in zip(trace, trace[1:]):
            if current.op in control and current.taken:
                assert current.target == following.pc
                checked += 1
            elif current.op not in control:
                assert following.pc in (current.pc + 4, following.pc)
        assert checked > 50  # the walk actually branched

    def test_memory_ops_have_addresses(self):
        trace = generate_trace(get_benchmark("mcf"), 2000)
        for instr in trace:
            if instr.op in (OpClass.LOAD, OpClass.STORE):
                assert instr.address > 0

    def test_dynamic_mix_tracks_profile(self):
        """Deck sampling keeps dynamic load fraction near the profile's."""
        profile = get_benchmark("mcf")
        trace = generate_trace(profile, 20000)
        mix = trace_mix(trace)
        load_fraction = mix.get(OpClass.LOAD, 0.0)
        # Control ops dilute body fractions; allow a wide but bounded band.
        assert 0.5 * profile.frac_load < load_fraction < 1.2 * profile.frac_load

    def test_dependency_distances_bounded_and_nonnegative(self):
        trace = generate_trace(get_benchmark("vortex"), 3000)
        distances = dependency_distances(trace)
        assert distances  # deps exist
        assert all(d >= 1 for d in distances)

    def test_pointer_chasing_creates_load_chains(self):
        """mcf's load_chain_prob must show up as load->load dependencies."""
        trace = generate_trace(get_benchmark("mcf"), 5000)
        chained = 0
        loads = 0
        for i, instr in enumerate(trace):
            if instr.op != OpClass.LOAD:
                continue
            loads += 1
            producer_index = i - instr.dep1
            if instr.dep1 and trace[producer_index].op == OpClass.LOAD:
                chained += 1
        assert loads > 0
        assert chained / loads > 0.4  # profile says 0.74, some draws miss

    def test_call_return_balance(self):
        trace = generate_trace(get_benchmark("parser"), 10000)
        calls = sum(1 for i in trace if i.op == OpClass.CALL)
        returns = sum(1 for i in trace if i.op == OpClass.RETURN)
        assert calls > 10
        assert abs(calls - returns) <= max(5, calls // 5)
