"""Unit tests for the closed-loop sleep-controller runtime pool.

Scripted acquire sequences against :class:`ControlledFunctionalUnitPool`
pin down the power-state machine: when wakes trigger, how long they
stall, and how the energy-state tallies conserve cycles.
"""

import pytest

from repro.core.parameters import TechnologyParameters
from repro.core.policies import IntervalOutcome
from repro.core.sleep_control import (
    POLICY_BUILDERS,
    PolicyController,
    RuntimeTally,
    build_controllers,
    build_policy,
)
from repro.cpu.fu import PowerState
from repro.cpu.sleep import ControlledFunctionalUnitPool, SleepRuntimeSpec

PARAMS = TechnologyParameters(leakage_factor_p=0.5)


def make_pool(policy="MaxSleep", units=1, latency=3, alpha=0.5):
    spec = SleepRuntimeSpec(
        policy=policy, leakage_factor_p=0.5, alpha=alpha, wakeup_latency=latency
    )
    return spec.build_pool(units)


class TestSleepRuntimeSpec:
    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown sleep policy"):
            SleepRuntimeSpec(policy="Nope")

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError, match="wakeup latency"):
            SleepRuntimeSpec(policy="MaxSleep", wakeup_latency=-1)

    def test_builds_one_controller_per_unit(self):
        pool = make_pool(units=3)
        assert isinstance(pool, ControlledFunctionalUnitPool)
        assert len(pool.controllers) == 3
        # Independent policy objects, not one shared instance.
        assert len({id(c.policy) for c in pool.controllers}) == 3

    def test_registry_covers_stateful_policies(self):
        assert "PredictiveSleep" in POLICY_BUILDERS
        policy = build_policy("PredictiveSleep", PARAMS, 0.5)
        assert not policy.stateless


class TestWakeupMechanics:
    def test_sleeping_unit_stalls_until_wakeup_paid(self):
        pool = make_pool(latency=3)
        assert pool.acquire(0, 1) == 0  # busy [0, 1)
        # Idle from 1; MaxSleep is asleep from the first idle cycle.
        assert pool.power_state(0, 5) == PowerState.ASLEEP
        assert pool.acquire(5, 1) is None  # triggers wake, ready at 8
        assert pool.blocked_on_wakeup
        assert pool.power_state(0, 5) == PowerState.WAKING
        assert pool.next_wake_ready() == 8
        assert pool.acquire(6, 1) is None
        assert pool.acquire(7, 1) is None
        assert pool.blocked_on_wakeup
        assert pool.acquire(8, 1) == 0
        assert not pool.blocked_on_wakeup
        pool.finalize(9)
        tally = pool.tallies[0]
        # Interval [1, 5) closed at the wake trigger; 3 waking cycles.
        assert pool.histograms[0].counts == {4: 1}
        assert tally.sleep == 4.0 and tally.transitions == 1.0
        assert tally.waking == 3 and tally.awake_wait == 0
        assert tally.wake_events == 1
        assert tally.active == 2
        # Conservation over [0, 9): 2 busy + 4 idle + 3 waking.
        assert tally.active + tally.idle_cycles == 9

    def test_awake_wait_between_wake_completion_and_claim(self):
        pool = make_pool(latency=2)
        assert pool.acquire(0, 1) == 0
        assert pool.acquire(4, 1) is None  # wake ready at 6
        assert pool.acquire(9, 1) == 0  # claimed 3 cycles after ready
        pool.finalize(10)
        tally = pool.tallies[0]
        assert tally.waking == 2
        assert tally.awake_wait == 3
        assert pool.histograms[0].counts == {3: 1}
        assert tally.active + tally.idle_cycles == 10

    def test_zero_latency_never_stalls(self):
        pool = make_pool(latency=0)
        assert pool.acquire(0, 1) == 0
        assert pool.acquire(5, 1) == 0  # asleep but instantly available
        assert not pool.blocked_on_wakeup
        pool.finalize(6)
        tally = pool.tallies[0]
        assert tally.waking == 0 and tally.awake_wait == 0
        assert tally.wake_events == 0
        assert pool.histograms[0].counts == {4: 1}
        assert tally.sleep == 4.0 and tally.transitions == 1.0

    def test_wakeup_free_policy_never_stalls(self):
        pool = make_pool(policy="NoOverhead", latency=5)
        assert pool.acquire(0, 1) == 0
        assert pool.acquire(7, 1) == 0
        assert not pool.blocked_on_wakeup
        pool.finalize(8)
        assert pool.tallies[0].wake_events == 0
        assert pool.tallies[0].sleep == 6.0
        assert pool.tallies[0].transitions == 0.0

    def test_always_active_units_never_sleep(self):
        pool = make_pool(policy="AlwaysActive", latency=5)
        assert pool.acquire(0, 1) == 0
        assert pool.power_state(0, 3) == PowerState.IDLE
        assert pool.acquire(9, 1) == 0
        pool.finalize(10)
        tally = pool.tallies[0]
        assert tally.sleep == 0.0 and tally.uncontrolled_idle == 8.0
        assert tally.wake_events == 0

    def test_awake_unit_preferred_over_waking_one(self):
        pool = make_pool(units=2, latency=4)
        assert pool.acquire(0, 1) == 0
        assert pool.acquire(0, 10) == 1  # unit 1 busy through cycle 10
        # Unit 0 asleep at 5; acquire triggers its wake.
        assert pool.acquire(5, 1) is None
        # Unit 1 frees at 10 (awake, elapsed 0): claimed directly even
        # though unit 0 finished waking at 9 — round-robin scan order
        # starts past unit 0 only if the pointer says so; both are
        # claimable, so something is granted.
        granted = pool.acquire(10, 1)
        assert granted is not None

    def test_serialized_wakes_one_in_flight(self):
        pool = make_pool(units=2, latency=4)
        assert pool.acquire(0, 1) == 0
        assert pool.acquire(0, 1) == 1
        # Both units asleep at 6; concurrent wake demand serializes —
        # the second failed acquire rides the wake already in flight.
        assert pool.acquire(6, 1) is None
        assert pool.acquire(6, 1) is None
        waking = [
            unit
            for unit in range(2)
            if pool.power_state(unit, 6) == PowerState.WAKING
        ]
        assert len(waking) == 1

    def test_timeout_policy_awake_within_timeout(self):
        pool = make_pool(policy="TimeoutSleep", latency=3)
        timeout = pool.controllers[0].policy.timeout
        assert pool.acquire(0, 1) == 0
        # Within the timeout window the unit is still uncontrolled-idle.
        assert pool.acquire(1 + timeout, 1) == 0
        assert not pool.blocked_on_wakeup


class TestWarmupReset:
    def test_reset_clears_tallies_and_controller_state(self):
        pool = make_pool(policy="PredictiveSleep", latency=0)
        assert pool.acquire(0, 1) == 0
        assert pool.acquire(100, 1) == 0
        prediction = pool.controllers[0].policy.prediction
        assert prediction > 0
        pool.reset_statistics(101)
        assert pool.controllers[0].policy.prediction == 0.0
        assert pool.tallies[0].controlled_idle == 0
        assert pool.tallies[0].uncontrolled_idle == 0.0

    def test_wake_straddling_reset_is_clamped(self):
        pool = make_pool(latency=10)
        assert pool.acquire(0, 1) == 0
        assert pool.acquire(3, 1) is None  # wake ready at 13
        pool.reset_statistics(8)  # boundary mid-wake
        assert pool.acquire(13, 1) == 0
        pool.finalize(14)
        tally = pool.tallies[0]
        # Only the post-boundary share of the wake is measured.
        assert tally.waking == 5
        assert tally.awake_wait == 0
        assert tally.active + tally.idle_cycles == 14 - 8


class TestControllerAdapter:
    def test_close_interval_matches_policy(self):
        controller = PolicyController(build_policy("GradualSleep", PARAMS, 0.5))
        reference = build_policy("GradualSleep", PARAMS, 0.5)
        for length in (1, 3, 10, 100):
            got = controller.close_interval(length)
            want = reference.on_interval(length)
            assert isinstance(got, IntervalOutcome)
            assert (got.uncontrolled_idle, got.sleep, got.transitions) == (
                want.uncontrolled_idle,
                want.sleep,
                want.transitions,
            )

    def test_never_asleep_before_first_idle_cycle(self):
        controller = PolicyController(build_policy("MaxSleep", PARAMS, 0.5))
        assert not controller.asleep_after(0)
        assert controller.asleep_after(1)

    def test_build_controllers_validates_count(self):
        with pytest.raises(ValueError):
            build_controllers("MaxSleep", PARAMS, 0.5, 0)


class TestRuntimeTally:
    def test_add_outcome_accumulates(self):
        tally = RuntimeTally()
        tally.add_outcome(5, IntervalOutcome(2.0, 3.0, 1.0))
        tally.add_outcome(4, IntervalOutcome(4.0, 0.0, 0.0))
        assert tally.controlled_idle == 9
        assert tally.uncontrolled_idle == 6.0
        assert tally.sleep == 3.0
        assert tally.transitions == 1.0
        assert tally.idle_cycles == 9
