"""Unit tests for the simulator facade and its cache."""

import pytest

from repro.cpu.config import MachineConfig
from repro.cpu.simulator import (
    Simulator,
    clear_simulation_cache,
    simulate_workload,
)
from repro.cpu.workloads import get_benchmark


class TestSimulator:
    def test_run_produces_result(self):
        result = Simulator(get_benchmark("mst"), seed=3).run(2000)
        assert result.workload_name == "mst"
        assert result.num_instructions == 2000
        assert result.stats.committed_instructions == 2000
        assert result.ipc > 0

    def test_warmup_excluded_from_stats(self):
        result = Simulator(get_benchmark("mst")).run(
            2000, warmup_instructions=1000
        )
        # The warmup boundary lands within one commit group.
        assert 1996 <= result.stats.committed_instructions <= 2000
        assert result.warmup_instructions == 1000


class TestSimulateWorkloadCache:
    def test_cache_hit_returns_same_object(self):
        clear_simulation_cache()
        profile = get_benchmark("gzip")
        a = simulate_workload(profile, 1500)
        b = simulate_workload(profile, 1500)
        assert a is b

    def test_cache_distinguishes_configs(self):
        clear_simulation_cache()
        profile = get_benchmark("gzip")
        a = simulate_workload(profile, 1500)
        b = simulate_workload(profile, 1500, config=MachineConfig().with_int_fus(2))
        assert a is not b
        assert a.stats.num_int_fus == 4
        assert b.stats.num_int_fus == 2

    def test_cache_distinguishes_seed_and_warmup(self):
        clear_simulation_cache()
        profile = get_benchmark("gzip")
        a = simulate_workload(profile, 1500, seed=1)
        b = simulate_workload(profile, 1500, seed=2)
        c = simulate_workload(profile, 1500, seed=1, warmup_instructions=500)
        assert a is not b
        assert a is not c

    def test_cache_bypass(self):
        clear_simulation_cache()
        profile = get_benchmark("gzip")
        a = simulate_workload(profile, 1500, use_cache=False)
        b = simulate_workload(profile, 1500, use_cache=False)
        assert a is not b
        assert a.ipc == pytest.approx(b.ipc)  # deterministic regardless

    def test_determinism_across_instances(self):
        clear_simulation_cache()
        profile = get_benchmark("twolf")
        a = Simulator(profile, seed=5).run(1200)
        b = Simulator(profile, seed=5).run(1200)
        assert a.stats.total_cycles == b.stats.total_cycles
        assert a.stats.ipc == b.stats.ipc
