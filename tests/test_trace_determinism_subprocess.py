"""Cross-process trace determinism (the reproducibility keystone).

Everything in the repo — the persistent cache, the process-pool
scheduler, the scenario IDs — assumes that (profile, window, seed)
pins down the instruction stream *across interpreter invocations*, not
just within one process. These tests run the generator in two fresh
subprocesses with different ``PYTHONHASHSEED`` values and require the
streams to match field-for-field (compared via
:func:`repro.cpu.trace.trace_digest`).
"""

import os
import subprocess
import sys
from pathlib import Path

import repro
from repro.cpu.trace import trace_digest
from repro.cpu.workloads import generate_trace, get_benchmark

_SRC_DIR = str(Path(repro.__file__).resolve().parents[1])

#: Emits one digest line covering a seed benchmark, two sampled
#: scenarios (one phased), and their scenario IDs.
_CHILD_SCRIPT = """
from repro.cpu.trace import trace_digest
from repro.cpu.workloads import generate_trace, get_benchmark
from repro.scenarios import sample_scenarios

parts = [trace_digest(generate_trace(get_benchmark("gzip"), 3000, seed=3))]
for scenario in sample_scenarios(2, seed=11, families=["memory_bound", "phased"]):
    parts.append(scenario.scenario_id)
    parts.append(trace_digest(generate_trace(scenario.profile, 2500, seed=3)))
print("|".join(parts))
"""


def _run_child(hash_seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONHASHSEED"] = hash_seed
    completed = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        check=True,
        timeout=300,
    )
    return completed.stdout.strip()


class TestSubprocessDeterminism:
    def test_two_fresh_processes_generate_identical_streams(self):
        first = _run_child("1")
        second = _run_child("2")
        assert first == second
        assert "|" in first  # sanity: the child really produced digests

    def test_parent_process_agrees_with_children(self):
        """The in-process stream equals the subprocess streams, so the
        memo layer and worker processes can never disagree."""
        child = _run_child("0").split("|")
        parent = trace_digest(
            generate_trace(get_benchmark("gzip"), 3000, seed=3)
        )
        assert child[0] == parent
