"""Unit tests for statistical summaries."""

import pytest

from repro.util.summaries import (
    arithmetic_mean,
    geometric_mean,
    relative_difference,
    weighted_mean,
)


class TestArithmeticMean:
    def test_basic(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            arithmetic_mean([])


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_scale_invariance(self):
        values = [0.5, 1.5, 2.5]
        assert geometric_mean([2 * v for v in values]) == pytest.approx(
            2 * geometric_mean(values)
        )

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([])


class TestWeightedMean:
    def test_basic(self):
        assert weighted_mean([1.0, 3.0], [1.0, 3.0]) == pytest.approx(2.5)

    def test_uniform_weights_match_mean(self):
        values = [2.0, 4.0, 9.0]
        assert weighted_mean(values, [1, 1, 1]) == pytest.approx(
            arithmetic_mean(values)
        )

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0], [1.0, 2.0])

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0, 2.0], [0.0, 0.0])

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0], [-1.0])


class TestRelativeDifference:
    def test_sign_convention(self):
        assert relative_difference(1.1, 1.0) == pytest.approx(0.1)
        assert relative_difference(0.9, 1.0) == pytest.approx(-0.1)

    def test_zero_reference_rejected(self):
        with pytest.raises(ValueError):
            relative_difference(1.0, 0.0)
