"""The robustness experiment: sampled scenarios through engine + evaluator."""

import pytest

from repro.experiments import robustness
from repro.experiments.common import ExperimentScale
from repro.scenarios import sample_scenarios
from repro.util.summaries import quantile

#: Tiny but legal scale: robustness correctness does not need steady state.
TINY_SCALE = ExperimentScale(window_instructions=1_500, warmup_instructions=500)


@pytest.fixture(scope="module")
def small_result():
    return robustness.run(scale=TINY_SCALE, count=12, seed=6)


class TestRun:
    def test_one_outcome_per_scenario_in_sample_order(self, small_result):
        scenarios = sample_scenarios(12, seed=6)
        assert [o.scenario_id for o in small_result.outcomes] == [
            s.scenario_id for s in scenarios
        ]
        assert small_result.families == tuple(
            dict.fromkeys(s.family for s in scenarios)
        )

    def test_result_carries_the_evaluated_scenarios(self, small_result):
        """Catalog writers serialize result.scenarios, so it must be the
        exact evaluated sample, outcome-aligned."""
        assert small_result.scenarios == tuple(sample_scenarios(12, seed=6))
        assert [s.scenario_id for s in small_result.scenarios] == [
            o.scenario_id for o in small_result.outcomes
        ]

    def test_savings_consistent_with_normalized_energy(self, small_result):
        for outcome in small_result.outcomes:
            always = outcome.normalized["AlwaysActive"]
            for name in small_result.policies:
                expected = 1.0 - outcome.normalized[name] / always
                assert outcome.savings[name] == expected

    def test_ranking_is_energy_sorted_permutation(self, small_result):
        for outcome in small_result.outcomes:
            assert sorted(outcome.ranking) == sorted(small_result.policies)
            energies = [outcome.normalized[name] for name in outcome.ranking]
            assert energies == sorted(energies)

    def test_deterministic_across_runs(self, small_result):
        again = robustness.run(scale=TINY_SCALE, count=12, seed=6)
        assert again.outcomes == small_result.outcomes

    def test_family_filter(self):
        result = robustness.run(
            scale=TINY_SCALE, count=4, seed=2, families=["ilp_rich"]
        )
        assert result.families == ("ilp_rich",)
        assert all(o.family == "ilp_rich" for o in result.outcomes)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown policy"):
            robustness.run(scale=TINY_SCALE, count=2, policies=["Nope"])

    def test_policy_typo_gets_suggestions(self):
        with pytest.raises(ValueError, match="did you mean MaxSleep"):
            robustness.run(scale=TINY_SCALE, count=2, policies=["MaxSlep"])

    def test_rejects_duplicate_policies(self):
        with pytest.raises(ValueError, match="duplicate"):
            robustness.run(
                scale=TINY_SCALE, count=2,
                policies=["MaxSleep", "MaxSleep"],
            )

    def test_rejects_empty_policy_list(self):
        with pytest.raises(ValueError, match="at least one policy"):
            robustness.run(scale=TINY_SCALE, count=2, policies=[])


class TestAggregates:
    def test_wins_sum_to_scenario_count(self, small_result):
        assert sum(
            small_result.wins(name) for name in small_result.policies
        ) == len(small_result.outcomes)

    def test_mean_rank_bounds(self, small_result):
        for name in small_result.policies:
            assert 1.0 <= small_result.mean_rank(name) <= len(
                small_result.policies
            )

    def test_modal_ranking_stability_bounds(self, small_result):
        for family in small_result.families:
            ranking, stability = small_result.modal_ranking(family)
            assert sorted(ranking) == sorted(small_result.policies)
            pool = small_result.family_outcomes(family)
            assert 1 / len(pool) <= stability <= 1.0

    def test_worst_case_is_the_minimum(self, small_result):
        for name in small_result.policies:
            worst = small_result.worst_case(name)
            assert worst.savings[name] == min(
                o.savings[name] for o in small_result.outcomes
            )

    def test_savings_values_split_by_family(self, small_result):
        name = small_result.policies[0]
        per_family = sum(
            len(small_result.savings_values(name, family))
            for family in small_result.families
        )
        assert per_family == len(small_result.savings_values(name))


class TestRender:
    def test_report_contains_every_table(self, small_result):
        text = robustness.render(small_result)
        assert "Policy robustness: 12 scenarios" in text
        assert "distribution over all scenarios" in text
        assert "Mean savings % per family" in text
        assert "Policy-ranking stability per family" in text
        assert "Wins (rank-1 scenarios)" in text
        assert "Worst-case scenario per policy" in text
        for name in small_result.policies:
            assert name in text
        for family in small_result.families:
            assert family in text

    def test_report_names_worst_scenarios_by_stable_id(self, small_result):
        text = robustness.render(small_result)
        worst = small_result.worst_case(small_result.policies[0])
        assert worst.scenario_id in text


class TestQuantile:
    def test_interpolates(self):
        assert quantile([0.0, 1.0], 0.5) == 0.5
        assert quantile([1.0, 2.0, 3.0, 4.0], 0.25) == 1.75

    def test_endpoints_and_singleton(self):
        assert quantile([3.0, 1.0, 2.0], 0.0) == 1.0
        assert quantile([3.0, 1.0, 2.0], 1.0) == 3.0
        assert quantile([7.0], 0.9) == 7.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="empty"):
            quantile([], 0.5)
        with pytest.raises(ValueError, match="quantile"):
            quantile([1.0], 1.5)

    def test_accepts_numpy_arrays(self):
        import numpy

        assert quantile(numpy.asarray([0.1, 0.2, 0.3]), 0.5) == 0.2
        with pytest.raises(ValueError, match="empty"):
            quantile(numpy.asarray([]), 0.5)
