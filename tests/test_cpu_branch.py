"""Unit tests for the combining branch predictor, RAS, and BTB."""

import pytest

from repro.cpu.branch import (
    BranchTargetBuffer,
    CombiningPredictor,
    ReturnAddressStack,
    SaturatingCounterTable,
)
from repro.cpu.config import BranchPredictorConfig


class TestSaturatingCounter:
    def test_initial_prediction_not_taken(self):
        table = SaturatingCounterTable(16)
        assert not table.predict(0)

    def test_trains_toward_taken(self):
        table = SaturatingCounterTable(16)
        table.update(3, True)
        assert table.predict(3)  # weakly-NT + 1 = weakly-taken

    def test_saturation(self):
        table = SaturatingCounterTable(16)
        for _ in range(10):
            table.update(0, True)
        assert table.counter(0) == 3
        table.update(0, False)
        assert table.predict(0)  # one NT from strongly-taken stays taken

    def test_hysteresis(self):
        table = SaturatingCounterTable(16, initial=3)
        table.update(5, False)
        assert table.predict(5)
        table.update(5, False)
        assert not table.predict(5)

    def test_index_wraps(self):
        table = SaturatingCounterTable(16)
        table.update(16, True)
        assert table.predict(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SaturatingCounterTable(15)
        with pytest.raises(ValueError):
            SaturatingCounterTable(16, initial=4)


class TestReturnAddressStack:
    def test_lifo(self):
        ras = ReturnAddressStack(8)
        ras.push(100)
        ras.push(200)
        assert ras.pop() == 200
        assert ras.pop() == 100
        assert ras.pop() is None

    def test_wraparound_overwrites_oldest(self):
        ras = ReturnAddressStack(2)
        ras.push(1)
        ras.push(2)
        ras.push(3)  # overwrites 1
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.occupancy == 0


class TestBranchTargetBuffer:
    def test_install_and_lookup(self):
        btb = BranchTargetBuffer(16, 2)
        btb.install(0x1000, 0x2000)
        assert btb.lookup(0x1000) == 0x2000
        assert btb.lookup(0x1004) is None

    def test_lru_eviction_within_set(self):
        btb = BranchTargetBuffer(16, 2)
        # Three PCs mapping to the same set (stride = sets * 4 bytes).
        stride = 16 * 4
        a, b, c = 0x1000, 0x1000 + stride, 0x1000 + 2 * stride
        btb.install(a, 1)
        btb.install(b, 2)
        btb.lookup(a)  # refresh a
        btb.install(c, 3)  # evicts b (LRU)
        assert btb.lookup(a) == 1
        assert btb.lookup(b) is None
        assert btb.lookup(c) == 3

    def test_reinstall_updates_target(self):
        btb = BranchTargetBuffer(16, 2)
        btb.install(0x1000, 0x2000)
        btb.install(0x1000, 0x3000)
        assert btb.lookup(0x1000) == 0x3000


class TestCombiningPredictor:
    def test_biased_branch_learned(self):
        predictor = CombiningPredictor()
        pc, target = 0x4000, 0x5000
        mispredicts = sum(
            predictor.update(pc, True, target) for _ in range(100)
        )
        # First sightings mispredict (cold counters + BTB), then learned.
        assert mispredicts <= 3
        assert predictor.predict_direction(pc)

    def test_alternating_pattern_learned_by_gshare(self):
        """Bimodal cannot learn T/NT alternation; global history can."""
        predictor = CombiningPredictor()
        pc, target = 0x4000, 0x5000
        outcomes = [bool(i % 2) for i in range(400)]
        early = sum(predictor.update(pc, t, target) for t in outcomes[:100])
        late = sum(predictor.update(pc, t, target) for t in outcomes[300:])
        assert late < early
        assert late <= 5

    def test_fixed_trip_loop_learned(self):
        """A trips=4 loop (TTTN repeating) becomes predictable."""
        predictor = CombiningPredictor()
        pc, target = 0x4000, 0x3000
        pattern = [True, True, True, False] * 100
        for taken in pattern[:200]:
            predictor.update(pc, taken, target)
        late_mispredicts = sum(
            predictor.update(pc, taken, target) for taken in pattern[200:]
        )
        assert late_mispredicts <= 5

    def test_btb_target_change_counts_as_mispredict(self):
        predictor = CombiningPredictor()
        pc = 0x4000
        for _ in range(10):
            predictor.update(pc, True, 0x5000)
        before = predictor.btb_misses_on_taken
        predictor.update(pc, True, 0x6000)  # target changed
        assert predictor.btb_misses_on_taken == before + 1

    def test_call_return_pairing(self):
        predictor = CombiningPredictor()
        # A call pushes its return address; the matching return predicts it.
        assert predictor.update_call(0x100, 0x104, 0x9000)  # cold BTB: miss
        assert not predictor.update_call(0x100, 0x104, 0x9000)
        mispredicted = predictor.update_return(0x9100, 0x104)
        assert not mispredicted

    def test_return_with_empty_ras_mispredicts(self):
        predictor = CombiningPredictor()
        assert predictor.update_return(0x9100, 0x104)

    def test_mispredict_rate_bounds(self):
        predictor = CombiningPredictor()
        assert predictor.mispredict_rate == 0.0
        for i in range(50):
            predictor.update(0x4000 + 4 * i, i % 3 == 0, 0x8000)
        assert 0.0 <= predictor.mispredict_rate <= 1.0
        assert predictor.lookups == 50

    def test_custom_config(self):
        config = BranchPredictorConfig(
            bimodal_entries=64,
            level1_entries=64,
            history_bits=4,
            level2_entries=64,
            meta_entries=64,
            ras_entries=4,
            btb_sets=64,
            btb_ways=1,
        )
        predictor = CombiningPredictor(config)
        predictor.update(0x1000, True, 0x2000)
        assert predictor.lookups == 1
