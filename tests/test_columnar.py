"""The columnar-equivalence gate (CI) plus TraceChunk machinery units.

The keystone contract of the columnar trace pipeline: the column-backed
generators — the pure-Python columnar drain and the compiled C trace
walker — reproduce the per-instruction reference walk *digest-identical*
(:func:`~repro.cpu.trace.trace_digest` over every field of every slot),
for every seed benchmark, for sampled scenarios, and for phased
composites, across chunk sizes. Digest identity is strictly stronger
than the float-equality the simulation gates assert: two traces with
the same digest are the same sequence of integers, so *any* consumer —
either pipeline kernel, any statistic, any future analysis — is
automatically unaffected by which generator produced them.

The simulation half closes the loop end-to-end: column-backed chunks
fed zero-copy to the batch kernel produce results ``==`` the walked
reference, open- and closed-loop, streaming on and off, across chunk
sizes including the degenerate ones (1 and 7, via re-chunking) the
streaming generators themselves refuse.

The unit half covers the dual-representation :class:`TraceChunk`
itself: ``from_columns`` validation, lazy instruction materialization,
object->column projection round-trips, and ``is_columnar`` provenance
(projection must not masquerade as native columnar backing — the CI
fast-path guard depends on it).
"""

from array import array

import pytest

from repro.cpu._trace_build import (
    trace_kernel_available,
    trace_kernel_unavailable_reason,
)
from repro.cpu.isa import OpClass
from repro.cpu.kernel import (
    KERNEL_BATCH,
    KERNEL_WALK,
    batch_kernel_available,
    chunk_trace,
    decode_chunk,
    run_batch,
)
from repro.cpu.pipeline import Pipeline
from repro.cpu.simulator import Simulator
from repro.cpu.sleep import SleepRuntimeSpec
from repro.cpu.stream import (
    COLUMN_TYPECODES,
    TraceChunk,
    columns_chunk,
)
from repro.cpu.trace import TraceInstruction, trace_digest
from repro.cpu.workloads import (
    _walk_trace,
    benchmark_names,
    generate_trace,
    get_benchmark,
    iter_trace,
)
from repro.scenarios import sample_scenarios
from repro.scenarios.phased import PhasedProfile

#: Closed-loop runtime with a nonzero wakeup latency so sleep decisions
#: really feed back into timing.
CLOSED_LOOP = SleepRuntimeSpec(policy="MaxSleep", wakeup_latency=2)


def _phased(name="columnar-mix"):
    return PhasedProfile(
        name,
        (get_benchmark("gcc"), get_benchmark("mcf"), get_benchmark("vortex")),
        (700, 333, 1009),
    )


def _drain(chunks):
    """Materialize a chunk stream, asserting it is column-backed."""
    instructions = []
    for chunk in chunks:
        assert chunk.is_columnar, "generator fell back to object chunks"
        instructions.extend(chunk.instructions)
    return instructions


# -- the digest-identity gate ---------------------------------------------------


class TestColumnarDigestGate:
    """Columnar generation == the reference walk, digest for digest."""

    @pytest.mark.parametrize("name", benchmark_names())
    def test_all_benchmarks(self, name):
        profile = get_benchmark(name)
        reference = trace_digest(list(_walk_trace(profile, 20_000, 7)))
        for chunk_size in (64, 1_024, 20_000):
            columnar = _drain(
                iter_trace(profile, 20_000, seed=7, chunk_size=chunk_size)
            )
            assert trace_digest(columnar) == reference, (name, chunk_size)

    @pytest.mark.parametrize("name", ("gcc", "health"))
    def test_python_drain_matches_reference(self, name, monkeypatch):
        """The pure-Python columnar drain (the no-compiler fallback,
        forced via ``REPRO_TRACE_ENGINE=python``) is digest-identical
        to the reference walk — and therefore to the C walker, which
        the previous test pins to the same reference."""
        profile = get_benchmark(name)
        reference = trace_digest(list(_walk_trace(profile, 15_000, 3)))
        monkeypatch.setenv("REPRO_TRACE_ENGINE", "python")
        columnar = _drain(iter_trace(profile, 15_000, seed=3))
        assert trace_digest(columnar) == reference

    @pytest.mark.skipif(
        not trace_kernel_available(),
        reason=f"no trace kernel: {trace_kernel_unavailable_reason()}",
    )
    def test_c_walker_matches_python_drain(self, monkeypatch):
        """Direct C-vs-Python comparison on one benchmark (both are
        pinned to the reference walk above; this asserts the dispatch
        itself switches engines without changing the stream)."""
        profile = get_benchmark("mcf")
        c_digest = trace_digest(_drain(iter_trace(profile, 30_000, seed=9)))
        monkeypatch.setenv("REPRO_TRACE_ENGINE", "python")
        py_digest = trace_digest(_drain(iter_trace(profile, 30_000, seed=9)))
        assert c_digest == py_digest

    def test_generate_trace_matches_reference(self):
        profile = get_benchmark("gzip")
        reference = list(_walk_trace(profile, 10_000, 5))
        assert trace_digest(generate_trace(profile, 10_000, seed=5)) == (
            trace_digest(reference)
        )

    def test_sampled_scenarios(self):
        for scenario in sample_scenarios(4, seed=17):
            profile = scenario.profile
            columnar = _drain(iter_trace(profile, 8_000, seed=2))
            reference = generate_trace(profile, 8_000, seed=2)
            assert trace_digest(columnar) == trace_digest(reference)

    def test_phased_composite(self):
        """The columnar member-relocating interleave == the object
        interleave (``build_trace``), chunk boundaries included."""
        profile = _phased()
        reference = profile.build_trace(25_000, seed=11)
        for chunk_size in (64, 1_024, 25_000):
            chunks = list(
                profile.iter_trace_chunks(25_000, seed=11, chunk_size=chunk_size)
            )
            sizes = [len(c) for c in chunks]
            assert sizes[:-1] == [chunk_size] * (len(sizes) - 1)
            assert 0 < sizes[-1] <= chunk_size
            columnar = _drain(chunks)
            assert trace_digest(columnar) == trace_digest(reference)


# -- the simulation gate --------------------------------------------------------


@pytest.mark.skipif(
    not batch_kernel_available(),
    reason="no C compiler: the batch kernel cannot be built",
)
class TestColumnarSimulationGate:
    """Column-backed chunks through the batch kernel == the walk."""

    @pytest.mark.parametrize("name", benchmark_names())
    def test_all_benchmarks_open_loop(self, name):
        profile = get_benchmark(name)
        walk = Simulator(profile, seed=7, kernel=KERNEL_WALK).run(5_000)
        batch = Simulator(profile, seed=7, kernel=KERNEL_BATCH).run(5_000)
        assert batch.stats == walk.stats

    @pytest.mark.parametrize("name", ("gcc", "mcf", "health"))
    def test_closed_loop(self, name):
        profile = get_benchmark(name)
        walk = Simulator(
            profile, seed=3, sleep=CLOSED_LOOP, kernel=KERNEL_WALK
        ).run(4_000, warmup_instructions=400)
        batch = Simulator(
            profile, seed=3, sleep=CLOSED_LOOP, kernel=KERNEL_BATCH
        ).run(4_000, warmup_instructions=400)
        assert batch.stats == walk.stats

    @pytest.mark.parametrize("streaming", (False, True))
    def test_streaming_on_off(self, streaming):
        """Columnar chunks feed both regimes: materialized (object view
        of the columns) and streamed (chunks pulled on demand)."""
        profile = get_benchmark("vpr")
        walk = Simulator(
            profile, seed=5, streaming=streaming, kernel=KERNEL_WALK
        ).run(4_000)
        batch = Simulator(profile, seed=5, kernel=KERNEL_BATCH).run(4_000)
        assert batch.stats == walk.stats

    @pytest.mark.parametrize("chunk_size", (1, 7, 1_024, 6_000))
    def test_chunk_sizes_incl_degenerate(self, chunk_size):
        """Sizes the streaming generators refuse (1, 7) still reach the
        kernel via re-chunking; boundaries can never affect results."""
        trace = generate_trace(get_benchmark("gcc"), 6_000, seed=11)
        reference = Pipeline(list(trace)).run()
        batch = run_batch(chunk_trace(trace, chunk_size), len(trace))
        assert batch == reference

    def test_sampled_scenarios(self):
        for scenario in sample_scenarios(3, seed=17):
            walk = Simulator(
                scenario.profile, seed=2, kernel=KERNEL_WALK
            ).run(4_000)
            batch = Simulator(
                scenario.profile, seed=2, kernel=KERNEL_BATCH
            ).run(4_000)
            assert batch.stats == walk.stats

    def test_phased_composite(self):
        profile = _phased()
        walk = Simulator(profile, seed=11, kernel=KERNEL_WALK).run(6_000)
        batch = Simulator(profile, seed=11, kernel=KERNEL_BATCH).run(6_000)
        assert batch.stats == walk.stats

    def test_decode_is_zero_copy_for_columnar_chunks(self):
        """The fast path really is pass-through: the arrays the kernel
        receives ARE the chunk's columns, no copies, no projection."""
        chunk = next(iter(iter_trace(get_benchmark("gcc"), 1_000, seed=1)))
        assert chunk.is_columnar
        decoded = decode_chunk(chunk)
        assert all(a is b for a, b in zip(decoded, chunk.columns))


# -- TraceChunk machinery units -------------------------------------------------


def _columns(rows):
    """Columns for ``rows`` of (op, pc, dep1, dep2, address, taken, target)."""
    cols = list(zip(*rows))
    return tuple(
        array(code, values)
        for code, values in zip(COLUMN_TYPECODES, cols)
    )


class TestTraceChunkMachinery:
    ROWS = [
        (int(OpClass.INT_ALU), 0x400000, 0, 0, 0, 0, 0),
        (int(OpClass.LOAD), 0x400004, 1, 0, 0x30000000, 0, 0),
        (int(OpClass.BRANCH), 0x400008, 2, 1, 0, 1, 0x400100),
    ]

    def test_from_columns_is_column_backed(self):
        chunk = TraceChunk.from_columns(0, _columns(self.ROWS))
        assert chunk.is_columnar
        assert len(chunk) == 3
        assert chunk.end == 3

    def test_lazy_materialization(self):
        chunk = TraceChunk.from_columns(5, _columns(self.ROWS))
        instructions = chunk.instructions
        assert [i.op for i in instructions] == [OpClass.INT_ALU, OpClass.LOAD, OpClass.BRANCH]
        assert instructions[1].address == 0x30000000
        assert instructions[2].taken is True
        assert instructions[2].target == 0x400100
        # Materialization is cached, not recomputed per access.
        assert chunk.instructions is instructions

    def test_projection_round_trip(self):
        objects = [
            TraceInstruction(
                OpClass(op), pc, dep1=d1, dep2=d2, address=addr, taken=bool(taken), target=target
            )
            for op, pc, d1, d2, addr, taken, target in self.ROWS
        ]
        chunk = TraceChunk(0, objects)
        rebuilt = TraceChunk.from_columns(0, chunk.columns)
        assert rebuilt.instructions == objects
        # Projection is cached too.
        assert chunk.columns is chunk.columns

    def test_is_columnar_is_provenance_not_state(self):
        """Projecting an object chunk's columns must NOT flip it to
        columnar — the CI fast-path guard reads this flag to prove the
        generators produced columns natively."""
        chunk = TraceChunk(0, [TraceInstruction(OpClass.NOP, 0x400000)])
        assert not chunk.is_columnar
        _ = chunk.columns
        assert not chunk.is_columnar

    def test_columns_chunk_helper(self):
        chunk = columns_chunk(3, [int(OpClass.NOP)], [0x400000], [0], [0], [0], [0], [0])
        assert chunk.is_columnar
        assert chunk.start == 3
        assert chunk.instructions[0].op is OpClass.NOP

    def test_from_columns_validation(self):
        good = _columns(self.ROWS)
        with pytest.raises(ValueError):
            TraceChunk.from_columns(-1, good)
        with pytest.raises(ValueError):
            TraceChunk.from_columns(0, good[:6])  # wrong arity
        bad_type = list(good)
        bad_type[1] = array("i", [0, 0, 0])  # pc must be 'q'
        with pytest.raises(ValueError):
            TraceChunk.from_columns(0, tuple(bad_type))
        ragged = list(good)
        ragged[2] = array("q", [0])  # shorter than the others
        with pytest.raises(ValueError):
            TraceChunk.from_columns(0, tuple(ragged))
        with pytest.raises(ValueError):
            TraceChunk.from_columns(
                0, tuple(array(code) for code in COLUMN_TYPECODES)
            )  # empty

    def test_object_constructor_still_validates(self):
        with pytest.raises(ValueError):
            TraceChunk(-1, [TraceInstruction(OpClass.NOP, 0)])
        with pytest.raises(ValueError):
            TraceChunk(0, [])
