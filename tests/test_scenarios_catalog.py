"""The on-disk scenario catalog: round trips and digest linkage."""

import json

import pytest

from repro.scenarios import (
    definitions_digest,
    load_catalog,
    sample_scenarios,
    write_catalog,
)
from repro.scenarios.catalog import CATALOG_FORMAT_VERSION, catalog_payload
from repro.cpu.workloads import generate_trace


class TestRoundTrip:
    def test_scenarios_survive_write_and_load(self, tmp_path):
        scenarios = sample_scenarios(12, seed=21)
        path = write_catalog(scenarios, tmp_path / "catalog.json")
        digest, loaded = load_catalog(path)
        assert digest == definitions_digest()
        assert loaded == scenarios  # dataclass equality, profiles included

    def test_loaded_profiles_generate_identical_traces(self, tmp_path):
        scenarios = sample_scenarios(6, seed=8)
        path = write_catalog(scenarios, tmp_path / "catalog.json")
        _, loaded = load_catalog(path)
        for original, restored in zip(scenarios, loaded):
            assert (
                generate_trace(original.profile, 2_000, seed=1)
                == generate_trace(restored.profile, 2_000, seed=1)
            )

    def test_plain_profile_members_keep_their_class(self, tmp_path):
        """A composite built from plain WorkloadProfiles (no sampling)
        must round-trip to the same classes — the class tag is part of
        cache identity, so coercing members to ScenarioWorkload would
        silently miss the original run's cache entries."""
        from repro.cpu.workloads import WorkloadProfile, get_benchmark
        from repro.scenarios import PhasedProfile, Scenario

        handmade = Scenario(
            scenario_id="handmade-phased",
            family="phased",
            index=0,
            profile=PhasedProfile(
                name="gzip-mcf",
                members=(get_benchmark("gzip"), get_benchmark("mcf")),
                phase_lengths=(1_000, 1_000),
                suite="custom-suite",  # non-default: must survive reload
            ),
        )
        path = write_catalog([handmade], tmp_path / "catalog.json")
        _, (loaded,) = load_catalog(path)
        assert loaded == handmade
        for member in loaded.profile.members:
            assert type(member) is WorkloadProfile

    def test_rejects_unknown_profile_class(self, tmp_path):
        document = catalog_payload(sample_scenarios(1, seed=1))
        document["scenarios"][0]["profile"]["__profile_class__"] = "Exotic"
        path = tmp_path / "catalog.json"
        path.write_text(json.dumps(document))
        with pytest.raises(ValueError, match="unknown catalog profile class"):
            load_catalog(path)

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "deep" / "nested" / "catalog.json"
        write_catalog(sample_scenarios(2, seed=1), target)
        assert target.exists()

    def test_payload_shape(self):
        scenarios = sample_scenarios(6, seed=4)
        payload = catalog_payload(scenarios)
        assert payload["format"] == CATALOG_FORMAT_VERSION
        assert payload["definitions_digest"] == definitions_digest()
        kinds = {entry["kind"] for entry in payload["scenarios"]}
        assert kinds == {"profile", "phased"}
        phased = next(
            e for e in payload["scenarios"] if e["kind"] == "phased"
        )
        assert len(phased["members"]) == 2
        assert len(phased["phase_lengths"]) == 2

    def test_json_is_deterministic(self, tmp_path):
        scenarios = sample_scenarios(5, seed=2)
        first = write_catalog(scenarios, tmp_path / "a.json").read_text()
        second = write_catalog(scenarios, tmp_path / "b.json").read_text()
        assert first == second


class TestErrors:
    def test_rejects_unknown_format_version(self, tmp_path):
        path = tmp_path / "catalog.json"
        document = catalog_payload(sample_scenarios(1, seed=1))
        document["format"] = 999
        path.write_text(json.dumps(document))
        with pytest.raises(ValueError, match="unsupported catalog format"):
            load_catalog(path)

    def test_rewritten_catalog_keeps_the_profiles_own_digest(self, tmp_path):
        """Re-serializing loaded scenarios must stamp the digest their
        profiles carry, not whatever the registry digests to today."""
        import dataclasses

        scenarios = sample_scenarios(2, seed=1)
        aged = []
        for scenario in scenarios:
            profile = dataclasses.replace(
                scenario.profile, catalog_digest="f" * 64
            )
            aged.append(dataclasses.replace(scenario, profile=profile))
        path = write_catalog(aged, tmp_path / "aged.json")
        digest, _ = load_catalog(path)
        assert digest == "f" * 64

    def test_mixed_definition_digests_rejected(self):
        import dataclasses

        first, second = sample_scenarios(2, seed=1)
        tampered = dataclasses.replace(
            second,
            profile=dataclasses.replace(
                second.profile, catalog_digest="a" * 64
            ),
        )
        with pytest.raises(ValueError, match="different definition digests"):
            catalog_payload([first, tampered])

    def test_rejects_unknown_entry_kind(self, tmp_path):
        path = tmp_path / "catalog.json"
        document = catalog_payload(sample_scenarios(1, seed=1))
        document["scenarios"][0]["kind"] = "mystery"
        path.write_text(json.dumps(document))
        with pytest.raises(ValueError, match="unknown catalog entry kind"):
            load_catalog(path)
