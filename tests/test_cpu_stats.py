"""Unit tests for the simulation statistics container."""

import pytest

from repro.cpu.stats import FunctionalUnitUsage, SimulationStats
from repro.util.intervals import IntervalHistogram


def usage(unit_id=0, busy=60, idle_lengths=(40,)):
    hist = IntervalHistogram()
    hist.extend(idle_lengths)
    return FunctionalUnitUsage(
        unit_id=unit_id,
        busy_cycles=busy,
        operations=busy,
        idle_histogram=hist,
        idle_intervals=list(idle_lengths),
    )


class TestFunctionalUnitUsage:
    def test_idle_cycles(self):
        assert usage(idle_lengths=(10, 30)).idle_cycles() == 40

    def test_utilization(self):
        assert usage(busy=60).utilization(100) == pytest.approx(0.6)
        with pytest.raises(ValueError):
            usage().utilization(0)


class TestSimulationStats:
    def build(self):
        return SimulationStats(
            total_cycles=100,
            committed_instructions=150,
            fu_usage=[usage(0, 60, (40,)), usage(1, 20, (50, 30))],
            branch_lookups=40,
            branch_mispredicts=4,
            cache_accesses={"L1D": 50},
            cache_misses={"L1D": 5},
        )

    def test_ipc(self):
        assert self.build().ipc == pytest.approx(1.5)

    def test_zero_cycles_ipc(self):
        stats = SimulationStats(
            total_cycles=0, committed_instructions=0, fu_usage=[]
        )
        assert stats.ipc == 0.0

    def test_mispredict_rate(self):
        assert self.build().branch_mispredict_rate == pytest.approx(0.1)

    def test_cache_miss_rate(self):
        stats = self.build()
        assert stats.cache_miss_rate("L1D") == pytest.approx(0.1)
        assert stats.cache_miss_rate("L2") == 0.0  # never accessed

    def test_alu_idle_fraction(self):
        # Unit 0 busy 60/100, unit 1 busy 20/100 -> idle = 1 - 80/200.
        assert self.build().alu_idle_fraction() == pytest.approx(0.6)

    def test_combined_histogram(self):
        combined = self.build().combined_idle_histogram()
        assert combined.counts == {40: 1, 50: 1, 30: 1}

    def test_validate_catches_imbalance(self):
        stats = self.build()
        stats.fu_usage[0].busy_cycles = 10  # busy 10 + idle 40 != 100
        with pytest.raises(ValueError):
            stats.validate()

    def test_validate_accepts_consistent(self):
        self.build().validate()
