"""Unit tests for the domino gate models (Table 1 reproduction)."""

import pytest

from repro.circuits.gates import (
    DominoGate,
    DominoStyle,
    build_or8,
    build_static_and2,
)
from repro.circuits.library import OR8_REFERENCE, calibrated_device_parameters


@pytest.fixture(scope="module")
def params():
    return calibrated_device_parameters()


class TestTable1Reproduction:
    """The calibrated model must reproduce every published Table 1 entry."""

    @pytest.mark.parametrize("style", list(DominoStyle))
    def test_energies_match_published(self, params, style):
        measured = build_or8(style).characterize(params)
        reference = OR8_REFERENCE[style]
        assert measured.dynamic_energy_fj == pytest.approx(
            reference.dynamic_energy_fj, rel=0.01
        )
        assert measured.leakage_lo_fj == pytest.approx(
            reference.leakage_lo_fj, rel=0.01
        )
        assert measured.leakage_hi_fj == pytest.approx(
            reference.leakage_hi_fj, rel=0.01
        )

    @pytest.mark.parametrize("style", list(DominoStyle))
    def test_delays_match_published(self, params, style):
        measured = build_or8(style).characterize(params)
        reference = OR8_REFERENCE[style]
        assert measured.evaluation_delay_ps == pytest.approx(
            reference.evaluation_delay_ps, abs=0.1
        )
        if reference.sleep_delay_ps is None:
            assert measured.sleep_delay_ps is None
        else:
            assert measured.sleep_delay_ps == pytest.approx(
                reference.sleep_delay_ps, abs=0.1
            )

    def test_sleep_overhead_matches_published(self, params):
        measured = build_or8(DominoStyle.DUAL_VT_SLEEP).characterize(params)
        assert measured.sleep_overhead_fj == pytest.approx(0.14, rel=0.01)

    def test_leakage_ratio_is_about_2000(self, params):
        gate = build_or8(DominoStyle.DUAL_VT)
        ratio = gate.leakage_energy_hi_fj(params) / gate.leakage_energy_lo_fj(params)
        assert 1800 < ratio < 2200


class TestGateStructure:
    def test_sleep_device_only_in_sleep_style(self, params):
        assert build_or8(DominoStyle.LOW_VT).sleep_device(params) is None
        assert build_or8(DominoStyle.DUAL_VT).sleep_device(params) is None
        sleep = build_or8(DominoStyle.DUAL_VT_SLEEP).sleep_device(params)
        assert sleep is not None
        assert sleep.vt_v == params.vt_high_v  # off the critical path

    def test_sleep_adds_negligible_hi_leakage(self, params):
        plain = build_or8(DominoStyle.DUAL_VT)
        with_sleep = build_or8(DominoStyle.DUAL_VT_SLEEP)
        extra = with_sleep.leakage_energy_hi_fj(params) - plain.leakage_energy_hi_fj(
            params
        )
        assert 0 < extra < 0.01 * plain.leakage_energy_hi_fj(params)

    def test_sleep_does_not_change_evaluation_delay(self, params):
        plain = build_or8(DominoStyle.DUAL_VT)
        with_sleep = build_or8(DominoStyle.DUAL_VT_SLEEP)
        assert with_sleep.evaluation_delay_ps(params) == pytest.approx(
            plain.evaluation_delay_ps(params)
        )

    def test_low_vt_gate_is_slower_and_hungrier(self, params):
        low = build_or8(DominoStyle.LOW_VT)
        dual = build_or8(DominoStyle.DUAL_VT)
        assert low.evaluation_delay_ps(params) > dual.evaluation_delay_ps(params)
        assert low.dynamic_energy_fj(params) > dual.dynamic_energy_fj(params)

    def test_characterize_reports_lo_for_sleep_style_hi_column(self, params):
        char = build_or8(DominoStyle.DUAL_VT_SLEEP).characterize(params)
        assert char.leakage_hi_fj == char.leakage_lo_fj

    def test_derived_ratios(self, params):
        char = build_or8(DominoStyle.DUAL_VT).characterize(params)
        assert char.leakage_factor_p == pytest.approx(1.4 / 22.2, rel=0.01)
        assert char.sleep_ratio_k == pytest.approx(7.1e-4 / 1.4, rel=0.01)

    def test_invalid_gate_configs(self):
        with pytest.raises(ValueError):
            DominoGate(name="bad", style=DominoStyle.DUAL_VT, num_inputs=0)
        with pytest.raises(ValueError):
            DominoGate(name="bad", style=DominoStyle.DUAL_VT, stack_factor=0.0)


class TestStaticCmosGate:
    def test_loads_inputs_more_than_domino(self, params):
        static = build_static_and2()
        domino = build_or8(DominoStyle.DUAL_VT)
        assert static.input_capacitance_ratio_vs_domino(domino) > 1.0

    def test_has_positive_energies(self, params):
        static = build_static_and2()
        assert static.leakage_energy_fj(params) > 0
        assert static.dynamic_energy_fj(params) > 0
