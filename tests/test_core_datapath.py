"""Unit tests for the byte-sliced GradualSleep extension."""

import pytest

from repro.core.datapath import ByteSlicedDatapath, ByteSlicedGradualSleep
from repro.core.parameters import TechnologyParameters


@pytest.fixture
def params():
    return TechnologyParameters(leakage_factor_p=0.5)


@pytest.fixture
def datapath():
    return ByteSlicedDatapath(total_bytes=8, active_bytes=2, narrow_fraction=0.7)


class TestByteSlicedDatapath:
    def test_sleep_residency(self, datapath):
        # 70% of ops use 2 of 8 bytes: 6/8 of the unit asleep for those.
        assert datapath.active_cycle_sleep_residency() == pytest.approx(
            0.7 * 6 / 8
        )

    def test_sliced_active_energy_below_plain(self, params, datapath):
        plain = params.active_cycle_energy(0.5)
        sliced = datapath.sliced_active_energy(params, 0.5)
        assert sliced < plain

    def test_wide_only_datapath_matches_plain(self, params):
        wide = ByteSlicedDatapath(total_bytes=8, active_bytes=8, narrow_fraction=1.0)
        assert wide.sliced_active_energy(params, 0.5) == pytest.approx(
            params.active_cycle_energy(0.5)
        )
        assert wide.transition_share() == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ByteSlicedDatapath(total_bytes=8, active_bytes=9)
        with pytest.raises(ValueError):
            ByteSlicedDatapath(narrow_fraction=-0.1)


class TestByteSlicedGradualSleep:
    def test_saves_over_plain_gradual(self, params, datapath):
        policy = ByteSlicedGradualSleep.for_technology(params, 0.5, datapath)
        saving = policy.savings_vs_plain_gradual(
            params, 0.5, active_cycles=1000, idle_intervals=[5, 20, 100] * 10
        )
        assert saving > 0.0

    def test_no_narrow_ops_no_saving(self, params):
        wide = ByteSlicedDatapath(total_bytes=8, active_bytes=8, narrow_fraction=0.0)
        policy = ByteSlicedGradualSleep.for_technology(params, 0.5, wide)
        saving = policy.savings_vs_plain_gradual(
            params, 0.5, active_cycles=1000, idle_intervals=[10] * 20
        )
        assert saving == pytest.approx(0.0, abs=1e-9)

    def test_total_energy_positive_and_bounded(self, params, datapath):
        policy = ByteSlicedGradualSleep.for_technology(params, 0.5, datapath)
        breakdown = policy.total_energy(
            params, 0.5, active_cycles=500, idle_intervals=[10] * 50
        )
        assert breakdown.total > 0
        # Cannot exceed the plain-GradualSleep cost.
        plain = 500 * params.active_cycle_energy(0.5) + sum(
            policy.design.interval_energy(params, 0.5, 10) for _ in range(50)
        )
        assert breakdown.total <= plain + 1e-9

    def test_savings_grow_with_narrowness(self, params):
        def saving(narrow_fraction):
            datapath = ByteSlicedDatapath(narrow_fraction=narrow_fraction)
            policy = ByteSlicedGradualSleep.for_technology(params, 0.5, datapath)
            return policy.savings_vs_plain_gradual(
                params, 0.5, active_cycles=1000, idle_intervals=[10] * 30
            )

        assert saving(0.9) > saving(0.5) > saving(0.1)
