"""Tests for the empirical experiments (Figures 7-9, Table 3).

These run at QUICK_SCALE (small windows) and assert the *qualitative*
paper claims: orderings, crossovers, and bands — not absolute values,
which need the full-scale windows of the benchmark harness.
"""

import pytest

from repro.experiments import figure7, figure8, figure9, table3
from repro.experiments.common import QUICK_SCALE, collect_benchmark_data

# Three benchmarks spanning the behavior range keep these tests fast.
SUBSET = ("gzip", "mcf", "twolf")


class TestCollectBenchmarkData:
    def test_uses_reference_fu_counts(self):
        data = collect_benchmark_data(scale=QUICK_SCALE, benchmarks=SUBSET)
        by_name = {d.name: d for d in data}
        assert by_name["gzip"].num_fus == 4
        assert by_name["mcf"].num_fus == 2

    def test_fu_override(self):
        data = collect_benchmark_data(
            scale=QUICK_SCALE, benchmarks=("mcf",), fu_override=4
        )
        assert data[0].num_fus == 4

    def test_policy_evaluation_shape(self):
        from repro.core.parameters import TechnologyParameters
        from repro.core.policies import paper_policy_suite

        data = collect_benchmark_data(scale=QUICK_SCALE, benchmarks=("gzip",))[0]
        params = TechnologyParameters(leakage_factor_p=0.5)
        energies = data.evaluate_policies(
            params, 0.5, paper_policy_suite(params, 0.5)
        )
        assert len(energies) == 4
        assert all(0 < e < 1.5 for e in energies.values())

    def test_normalization_recombines_per_fu_results(self):
        """Regression: the per-benchmark normalization must equal the
        recombination of per-FU normalized energies,
        ``sum_i(norm_i * E_max_i) / sum_i(E_max_i)`` — i.e. both levels
        share one denominator (the accountant's busy + idle cycles)."""
        from repro.core.accounting import EnergyAccountant
        from repro.core.parameters import TechnologyParameters
        from repro.core.policies import paper_policy_suite

        data = collect_benchmark_data(scale=QUICK_SCALE, benchmarks=("gzip",))[0]
        params = TechnologyParameters(leakage_factor_p=0.5)
        policies = paper_policy_suite(params, 0.5)
        energies = data.evaluate_policies(params, 0.5, policies)

        accountant = EnergyAccountant(params, 0.5)
        recombined: dict = {}
        baselines: dict = {}
        for usage in data.result.stats.fu_usage:
            per_fu = accountant.evaluate_many(
                policies,
                active_cycles=usage.busy_cycles,
                histogram=usage.idle_histogram,
                interval_sequence=usage.idle_intervals,
            )
            for name, result in per_fu.items():
                # The accountant's denominator: busy + idle cycles.
                expected_baseline = accountant.baseline_energy(
                    usage.busy_cycles + usage.idle_histogram.total_idle_cycles
                )
                assert result.baseline_energy == expected_baseline
                recombined[name] = (
                    recombined.get(name, 0.0)
                    + result.normalized_energy * result.baseline_energy
                )
                baselines[name] = baselines.get(name, 0.0) + result.baseline_energy
        for name, value in energies.items():
            assert value == pytest.approx(
                recombined[name] / baselines[name], rel=1e-12
            )

    def test_breakdown_counts_sum_across_fus(self):
        """Merged PolicyResult.counts must cover every FU, not just the
        first: the per-policy cycle totals have to account for
        num_fus * total_cycles."""
        from repro.core.parameters import TechnologyParameters
        from repro.core.policies import AlwaysActivePolicy

        data = collect_benchmark_data(scale=QUICK_SCALE, benchmarks=("gzip",))[0]
        assert data.num_fus > 1
        params = TechnologyParameters(leakage_factor_p=0.5)
        merged = data.evaluate_policy_breakdowns(
            params, 0.5, [AlwaysActivePolicy()]
        )["AlwaysActive"]
        expected_cycles = data.num_fus * data.total_cycles
        assert merged.counts.total_cycles == pytest.approx(expected_cycles)
        assert merged.total_cycles == pytest.approx(expected_cycles)
        # AlwaysActive never sleeps: active + uncontrolled idle covers all.
        assert merged.counts.active == pytest.approx(
            sum(data.per_fu_active_cycles())
        )


class TestFigure7Experiment:
    @pytest.fixture(scope="class")
    def result(self):
        return figure7.run(scale=QUICK_SCALE, benchmarks=SUBSET)

    def test_idle_fraction_in_plausible_band(self, result):
        for dist in result.distributions.values():
            assert 0.2 < dist.overall_idle_fraction < 0.95

    def test_bucket_fractions_sum_to_idle_fraction(self, result):
        for dist in result.distributions.values():
            assert dist.total_fraction == pytest.approx(
                dist.overall_idle_fraction, rel=1e-6
            )

    def test_most_intervals_short(self, result):
        """The paper: a large fraction of intervals fall within the L2
        latency; long intervals are rare."""
        dist = result.distributions[12]
        assert dist.intervals_within_l2_latency > 0.5
        long_mass = sum(
            fraction
            for edge, fraction in dist.bucket_fractions.items()
            if edge > 1024
        )
        assert long_mass < 0.2 * dist.overall_idle_fraction

    def test_longer_l2_increases_idle(self, result):
        assert (
            result.distributions[32].overall_idle_fraction
            > result.distributions[12].overall_idle_fraction
        )

    def test_render(self, result):
        text = figure7.render(result)
        assert "Figure 7" in text
        assert "12-cycle L2" in text and "32-cycle L2" in text


class TestFigure8Experiment:
    @pytest.fixture(scope="class")
    def result(self):
        return figure8.run(scale=QUICK_SCALE, benchmarks=SUBSET)

    def test_low_p_max_sleep_loses(self, result):
        """Figure 8a's headline: at p=0.05 MaxSleep uses more energy than
        AlwaysActive."""
        summary = figure8.summarize(result, 0.05)
        assert summary.max_sleep_vs_always_active > 0

    def test_high_p_max_sleep_wins_big(self, result):
        """Figure 8b: at p=0.50 MaxSleep saves substantially and captures
        most of the NoOverhead potential."""
        summary = figure8.summarize(result, 0.50)
        assert summary.max_sleep_vs_always_active < -0.10
        assert summary.max_sleep_fraction_of_potential > 0.5

    def test_gradual_tracks_the_better_policy(self, result):
        low = figure8.summarize(result, 0.05)
        high = figure8.summarize(result, 0.50)
        assert abs(low.gradual_vs_always_active) < 0.10
        assert abs(high.gradual_vs_max_sleep) < 0.10

    def test_alpha_whiskers_ordered(self, result):
        """Higher alpha -> cheaper transitions -> MaxSleep improves."""
        per_alpha = result.energies[0.50]
        for bench in SUBSET:
            assert (
                per_alpha[0.75][bench]["MaxSleep"]
                <= per_alpha[0.25][bench]["MaxSleep"] + 1e-9
            )

    def test_render(self, result):
        text = figure8.render(result)
        assert "p=0.05" in text and "p=0.5" in text
        assert "Average" in text


class TestFigure9Experiment:
    @pytest.fixture(scope="class")
    def result(self):
        return figure9.run(
            scale=QUICK_SCALE,
            benchmarks=SUBSET,
            p_grid=(0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0),
        )

    def test_always_active_degrades_with_p(self, result):
        series = result.relative_to_no_overhead["AlwaysActive"]
        assert series[-1] > series[0]
        assert series[-1] > 1.3

    def test_max_sleep_converges_toward_no_overhead(self, result):
        series = result.relative_to_no_overhead["MaxSleep"]
        assert series[-1] < series[0]
        assert series[-1] < 1.15

    def test_crossover_in_low_p_region(self, result):
        p = figure9.crossover_p(result)
        assert p <= 0.35  # the paper's crossover is near 0.1-0.2

    def test_gradual_tracks_lower_envelope(self, result):
        aa = result.relative_to_no_overhead["AlwaysActive"]
        ms = result.relative_to_no_overhead["MaxSleep"]
        gs = result.relative_to_no_overhead["GradualSleep"]
        for i in range(len(result.p_grid)):
            envelope = min(aa[i], ms[i])
            assert gs[i] <= envelope * 1.25

    def test_leakage_fraction_grows_with_p(self, result):
        for policy in ("AlwaysActive", "MaxSleep", "GradualSleep", "NoOverhead"):
            series = result.leakage_fraction[policy]
            assert series[-1] > series[0]
            assert all(0.0 <= v <= 1.0 for v in series)

    def test_no_overhead_has_lowest_leakage_fraction(self, result):
        no = result.leakage_fraction["NoOverhead"]
        aa = result.leakage_fraction["AlwaysActive"]
        for n, a in zip(no, aa):
            assert n <= a + 1e-9

    def test_render(self, result):
        text = figure9.render(result)
        assert "Figure 9a" in text and "Figure 9b" in text


class TestTable3Experiment:
    @pytest.fixture(scope="class")
    def result(self):
        return table3.run(scale=QUICK_SCALE, benchmarks=SUBSET)

    def test_ipc_monotone_in_fus(self, result):
        for selection in result.selections:
            ipcs = [selection.ipc_by_fus[f] for f in sorted(selection.ipc_by_fus)]
            assert all(b >= a - 0.02 for a, b in zip(ipcs, ipcs[1:]))

    def test_selection_rule(self, result):
        for selection in result.selections:
            peak = selection.max_ipc
            chosen = selection.selected_fus
            assert selection.ipc_by_fus[chosen] >= 0.95 * peak
            for fewer in range(1, chosen):
                assert selection.ipc_by_fus[fewer] < 0.95 * peak

    def test_select_fu_count_helper(self):
        assert table3.select_fu_count({1: 1.0, 2: 1.5, 3: 1.58, 4: 1.6}) == 3
        assert table3.select_fu_count({1: 1.6, 2: 1.61, 3: 1.62, 4: 1.63}) == 1

    def test_render(self, result):
        text = table3.render(result)
        assert "Table 3" in text
        assert "FU selection matches" in text
