"""The streaming-equivalence gate (CI) plus streaming-machinery units.

The keystone contract of the streaming trace engine: a streamed run
reproduces a materialized run *float-for-float* (``==``, not approx) —
same idle histograms, same sleep-controller tallies, same stall counts —
for every seed benchmark and for sampled scenarios, open- and
closed-loop. This is what licenses streaming's absence from the
simulation cache keys: the two modes must be observationally identical,
so they may share cache entries.

The unit half covers the machinery itself: chunk contiguity, the
sliding window's eviction contract, bounded buffering, and the
mode-resolution rules.
"""

import dataclasses

import pytest

from repro.cpu import stream
from repro.cpu.pipeline import Pipeline
from repro.cpu.simulator import Simulator, cached_result, simulate_workload
from repro.cpu.sleep import SleepRuntimeSpec
from repro.cpu.stream import (
    MIN_CHUNK_SIZE,
    RETAIN_CHUNKS,
    STREAMING_THRESHOLD,
    StreamingTrace,
    TraceChunk,
    chunk_instructions,
    resolve_chunk_size,
    resolve_streaming,
)
from repro.cpu.trace import trace_digest
from repro.cpu.workloads import benchmark_names, generate_trace, get_benchmark, iter_trace
from repro.exec.engine import _stamp_defaults
from repro.exec.jobs import SimulationJob
from repro.scenarios import sample_scenarios

#: Small enough to exercise many chunk boundaries in short test windows.
TINY_CHUNK = MIN_CHUNK_SIZE

#: Closed-loop runtime used by the equivalence matrix: a nonzero wakeup
#: latency so sleep decisions really feed back into timing.
CLOSED_LOOP = SleepRuntimeSpec(policy="MaxSleep", wakeup_latency=2)


@pytest.fixture(autouse=True)
def _reset_streaming_default():
    """Tests may set the process-wide mode; always restore auto."""
    yield
    stream.set_default_streaming(None)


def _run(profile, streaming, sleep=None, window=2_500, warmup=500):
    """One uncached simulation in the requested trace-delivery mode."""
    return Simulator(
        profile,
        sleep=sleep,
        streaming=streaming,
        chunk_size=TINY_CHUNK if streaming else None,
    ).run(window, warmup_instructions=warmup)


# -- the equivalence gate ------------------------------------------------------


class TestStreamingEquivalence:
    """Streamed == materialized, float for float (the CI gate)."""

    @pytest.mark.parametrize("name", benchmark_names())
    def test_open_loop_benchmarks(self, name):
        materialized = _run(get_benchmark(name), streaming=False)
        streamed = _run(get_benchmark(name), streaming=True)
        # Dataclass equality covers every field: cycle and stall counts,
        # per-unit busy cycles, idle histograms (exact per-length
        # counts), and ordered interval sequences.
        assert streamed.stats == materialized.stats

    @pytest.mark.parametrize("name", benchmark_names())
    def test_closed_loop_benchmarks(self, name):
        materialized = _run(get_benchmark(name), streaming=False, sleep=CLOSED_LOOP)
        streamed = _run(get_benchmark(name), streaming=True, sleep=CLOSED_LOOP)
        assert streamed.stats == materialized.stats
        # The closed-loop extras, called out explicitly: wakeup stalls
        # and per-unit energy-state tallies.
        assert (
            streamed.stats.wakeup_stall_cycles
            == materialized.stats.wakeup_stall_cycles
        )
        for mine, theirs in zip(
            streamed.stats.fu_usage, materialized.stats.fu_usage
        ):
            assert mine.sleep_tally == theirs.sleep_tally
            assert mine.idle_histogram == theirs.idle_histogram

    @pytest.mark.parametrize(
        "scenario",
        sample_scenarios(4, seed=7, families=["memory_bound", "phased"]),
        ids=lambda s: s.scenario_id,
    )
    def test_sampled_scenarios_open_and_closed(self, scenario):
        for sleep in (None, CLOSED_LOOP):
            materialized = _run(
                scenario.profile, streaming=False, sleep=sleep, window=2_000
            )
            streamed = _run(
                scenario.profile, streaming=True, sleep=sleep, window=2_000
            )
            assert streamed.stats == materialized.stats

    def test_chunk_size_never_changes_results(self):
        profile = get_benchmark("vpr")
        reference = _run(profile, streaming=False)
        for chunk_size in (MIN_CHUNK_SIZE, 257, 1024):
            streamed = Simulator(
                profile, streaming=True, chunk_size=chunk_size
            ).run(2_500, warmup_instructions=500)
            assert streamed.stats == reference.stats


# -- trace-level invariants ----------------------------------------------------


class TestIterTrace:
    @pytest.mark.parametrize("name", ["gzip", "mcf", "gcc"])
    def test_chunks_flatten_to_generate_trace(self, name):
        profile = get_benchmark(name)
        reference = generate_trace(profile, 3_001, seed=5)
        chunks = list(iter_trace(profile, 3_001, seed=5, chunk_size=TINY_CHUNK))
        flat = [instr for chunk in chunks for instr in chunk.instructions]
        assert flat == reference
        assert [chunk.start for chunk in chunks] == list(
            range(0, 3_001, TINY_CHUNK)
        )
        assert chunks[-1].end == 3_001

    def test_phased_hook_streams_members(self):
        scenario = next(
            s
            for s in sample_scenarios(2, seed=7, families=["phased"])
            if s.family == "phased"
        )
        reference = generate_trace(scenario.profile, 4_000, seed=2)
        chunks = list(
            iter_trace(scenario.profile, 4_000, seed=2, chunk_size=MIN_CHUNK_SIZE)
        )
        assert trace_digest(
            instr for chunk in chunks for instr in chunk.instructions
        ) == trace_digest(reference)

    def test_rejects_bad_sizes(self):
        profile = get_benchmark("gzip")
        with pytest.raises(ValueError, match="num_instructions"):
            list(iter_trace(profile, 0))
        with pytest.raises(ValueError, match="chunk_size"):
            list(iter_trace(profile, 100, chunk_size=MIN_CHUNK_SIZE - 1))


class TestTraceChunk:
    def test_validates_shape(self):
        with pytest.raises(ValueError, match="empty"):
            TraceChunk(0, [])
        with pytest.raises(ValueError, match="start"):
            TraceChunk(-1, generate_trace(get_benchmark("gzip"), 1))

    def test_end_is_exclusive(self):
        chunk = TraceChunk(10, generate_trace(get_benchmark("gzip"), 5))
        assert len(chunk) == 5
        assert chunk.end == 15


class TestStreamingTrace:
    def _trace(self, length=1_000, chunk_size=100, retain=RETAIN_CHUNKS):
        profile = get_benchmark("gzip")
        return (
            generate_trace(profile, length, seed=9),
            StreamingTrace(
                chunk_instructions(
                    generate_trace(profile, length, seed=9), chunk_size
                ),
                length,
                retain_chunks=retain,
            ),
        )

    def test_sequential_iteration_matches_list(self):
        reference, streaming = self._trace()
        assert len(streaming) == len(reference)
        assert list(streaming) == reference

    def test_window_supports_bounded_backward_access(self):
        _, streaming = self._trace()
        assert streaming[250] == streaming[250]  # newest chunk revisit
        streaming[399]
        # One chunk behind the newest is the dispatch cursor's pattern.
        assert streaming[300] is not None

    def test_access_behind_window_raises(self):
        _, streaming = self._trace()
        streaming[999]  # stream to the end; early chunks evicted
        with pytest.raises(RuntimeError, match="evicted"):
            streaming[0]

    def test_buffering_is_bounded(self):
        _, streaming = self._trace(length=1_000, chunk_size=100)
        for index in range(1_000):
            streaming[index]
        assert streaming.chunks_loaded == 10
        assert streaming.peak_buffered <= RETAIN_CHUNKS * 100

    def test_negative_index_and_bounds(self):
        reference, streaming = self._trace(length=350, chunk_size=100)
        for index in range(350):
            streaming[index]
        assert streaming[-1] == reference[-1]
        with pytest.raises(IndexError):
            streaming[350]
        with pytest.raises(TypeError, match="slicing"):
            streaming[1:3]

    def test_short_stream_detected(self):
        profile = get_benchmark("gzip")
        streaming = StreamingTrace(
            chunk_instructions(generate_trace(profile, 100, seed=1), 100),
            length=200,
        )
        with pytest.raises(RuntimeError, match="ended"):
            streaming[150]

    def test_non_contiguous_chunks_detected(self):
        instrs = generate_trace(get_benchmark("gzip"), 100, seed=1)
        gapped = [TraceChunk(0, instrs[:50]), TraceChunk(60, instrs[50:])]
        streaming = StreamingTrace(iter(gapped), 100)
        with pytest.raises(ValueError, match="non-contiguous"):
            streaming[99]

    def test_overrun_chunks_detected(self):
        instrs = generate_trace(get_benchmark("gzip"), 100, seed=1)
        streaming = StreamingTrace(iter([TraceChunk(0, instrs)]), 50)
        with pytest.raises(ValueError, match="overruns"):
            streaming[40]

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="length"):
            StreamingTrace(iter(()), 0)
        with pytest.raises(ValueError, match="retain_chunks"):
            StreamingTrace(iter(()), 10, retain_chunks=1)

    def test_pipeline_runs_from_streaming_trace(self):
        """Direct Pipeline use (not via Simulator) works unchanged."""
        profile = get_benchmark("mst")
        reference = Pipeline(generate_trace(profile, 2_000, seed=4)).run()
        streaming_trace = StreamingTrace(
            iter_trace(profile, 2_000, seed=4, chunk_size=TINY_CHUNK), 2_000
        )
        streamed = Pipeline(streaming_trace).run()
        assert streamed == reference
        assert streaming_trace.peak_buffered <= RETAIN_CHUNKS * TINY_CHUNK


# -- mode resolution and cache interaction -------------------------------------


class TestModeResolution:
    def test_explicit_beats_everything(self):
        stream.set_default_streaming(False)
        assert resolve_streaming(True, 10) is True
        assert resolve_streaming(False, 10**9) is False

    def test_process_default_beats_threshold(self):
        stream.set_default_streaming(True)
        assert resolve_streaming(None, 10) is True
        stream.set_default_streaming(False)
        assert resolve_streaming(None, 10**9) is False

    def test_auto_uses_threshold(self):
        stream.set_default_streaming(None)
        assert resolve_streaming(None, STREAMING_THRESHOLD - 1) is False
        assert resolve_streaming(None, STREAMING_THRESHOLD) is True

    def test_chunk_size_resolution(self):
        assert resolve_chunk_size(None) == stream.get_default_chunk_size()
        assert resolve_chunk_size(4_096) == 4_096
        with pytest.raises(ValueError, match="chunk_size"):
            resolve_chunk_size(1)
        with pytest.raises(ValueError, match="chunk_size"):
            stream.set_default_streaming(True, chunk_size=1)

    def test_engine_stamps_default_into_jobs(self):
        job = SimulationJob(profile=get_benchmark("gzip"), num_instructions=1_000)
        assert _stamp_defaults(job) is job  # auto resolves anywhere
        stream.set_default_streaming(True, chunk_size=8_192)
        stamped = _stamp_defaults(job)
        assert stamped.streaming is True
        assert stamped.chunk_size == 8_192
        explicit = dataclasses.replace(job, streaming=False)
        assert _stamp_defaults(explicit).streaming is False

    def test_engine_stamps_chunk_size_even_under_auto_mode(self):
        """A user --chunk-size must reach auto-streamed worker jobs."""
        job = SimulationJob(profile=get_benchmark("gzip"), num_instructions=1_000)
        stream.set_default_streaming(None, chunk_size=1_024)
        stamped = _stamp_defaults(job)
        assert stamped.streaming is None  # mode stays auto
        assert stamped.chunk_size == 1_024

    def test_set_default_resets_and_validates_atomically(self):
        stream.set_default_streaming(True, chunk_size=8_192)
        stream.set_default_streaming(None)  # full reset, chunk size too
        assert stream.get_default_streaming() is None
        assert stream.get_default_chunk_size() == stream.DEFAULT_CHUNK_SIZE
        with pytest.raises(ValueError, match="chunk_size"):
            stream.set_default_streaming(True, chunk_size=1)
        # The failed call changed nothing.
        assert stream.get_default_streaming() is None
        assert stream.get_default_chunk_size() == stream.DEFAULT_CHUNK_SIZE


class TestCacheNeutrality:
    def test_streaming_is_not_part_of_the_cache_key(self):
        base = SimulationJob(profile=get_benchmark("gzip"), num_instructions=1_000)
        streamed = dataclasses.replace(
            base, streaming=True, chunk_size=MIN_CHUNK_SIZE
        )
        assert streamed.cache_key() == base.cache_key()

    def test_streamed_result_serves_materialized_lookups(self):
        """The memo is shared across modes — safe exactly because of the
        equivalence gate above."""
        profile = get_benchmark("health")
        streamed = simulate_workload(
            profile,
            1_500,
            seed=23,
            streaming=True,
            chunk_size=TINY_CHUNK,
        )
        hit = cached_result(profile, 1_500, seed=23)
        assert hit is streamed
